// Regenerates paper Fig. 3: the hub-and-spoke toy example contrasting the
// Noise-Corrected backbone with the Disparity Filter.
//
// Paper claims to reproduce:
//  * DF selects the hub's links to the interconnected peripheral pair
//    (the blue dashed edges) because those links dominate the peripheral
//    nodes' own strengths;
//  * NC instead ranks the weak peripheral-peripheral edge highest: two
//    weak nodes connecting is a larger deviation from randomness than any
//    connection involving the hub.

#include "bench_common.h"
#include "core/disparity_filter.h"
#include "core/filter.h"
#include "core/noise_corrected.h"
#include "graph/builder.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 3", "toy example: NC vs DF on a hub with a peripheral tie");

  nb::GraphBuilder builder(nb::Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);  // hub -> interconnected node 1
  builder.AddEdge(0, 2, 10.0);  // hub -> interconnected node 2
  builder.AddEdge(0, 3, 10.0);  // hub -> pendant spokes
  builder.AddEdge(0, 4, 10.0);
  builder.AddEdge(0, 5, 10.0);
  builder.AddEdge(1, 2, 4.0);   // the weak peripheral-peripheral tie
  const auto graph = builder.Build();
  if (!graph.ok()) return 1;

  const auto nc = nb::NoiseCorrected(*graph);
  const auto df = nb::DisparityFilter(*graph);
  if (!nc.ok() || !df.ok()) return 1;

  const nb::BackboneMask nc_top4 = nb::TopK(*nc, 4);
  const nb::BackboneMask df_top4 = nb::TopK(*df, 4);

  PrintRow({"edge", "weight", "NC score", "NC sdev", "DF score", "NC@4",
            "DF@4"});
  for (nb::EdgeId id = 0; id < graph->num_edges(); ++id) {
    const nb::Edge& e = graph->edge(id);
    PrintRow({std::to_string(e.src) + "-" + std::to_string(e.dst),
              Num(e.weight, 1), Num(nc->at(id).score, 4),
              Num(nc->at(id).sdev, 4), Num(df->at(id).score, 4),
              nc_top4.keep[static_cast<size_t>(id)] ? "keep" : "drop",
              df_top4.keep[static_cast<size_t>(id)] ? "keep" : "drop"});
  }

  const nb::EdgeId peripheral = graph->FindEdge(1, 2);
  const nb::EdgeId hub_edge = graph->FindEdge(0, 1);
  std::printf(
      "\nNC ranks 1-2 %s 0-1  |  DF ranks 1-2 %s 0-1\n",
      nc->at(peripheral).score > nc->at(hub_edge).score ? "ABOVE" : "below",
      df->at(peripheral).score > df->at(hub_edge).score ? "above" : "BELOW");
  std::printf(
      "Paper reference: at a budget of 4 edges, NC keeps the peripheral\n"
      "tie plus the pendant spokes and drops the hub's links to nodes 1-2;\n"
      "DF does the opposite.\n");
  return 0;
}
