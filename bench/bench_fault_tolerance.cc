// Chaos gate for the fault-tolerance layer (src/service/): replays a
// skewed request trace against the serving engine with seeded injected
// scoring failures, scoring latency, cache-insert drops and dispatcher
// stalls (service/fault_injection.h) at 1% and 5% rates.
//
// Contract being demonstrated (and enforced — the process exits non-zero
// on any violation):
//   * the engine neither deadlocks nor crashes under fault pressure
//     (every Submit future resolves within a generous global timeout);
//   * every successful response under chaos is bit-identical to the
//     fault-free run of the same trace, or explicitly flagged degraded;
//     every failed response carries a typed failure status — nothing is
//     silently approximated;
//   * a request that hits its deadline returns within deadline + one
//     cancellation-check grain (the 1ms sleep slice plus scheduling
//     slack), not after the full scoring it abandoned;
//   * the degraded path answers from the warm lineage ancestor's exact
//     artifacts, flagged with provenance, and schedules the exact
//     recompute in the background;
//   * with injection disabled the warm path pays nothing for the hooks:
//     when NETBONE_BENCH_BASELINE names a BENCH_serving_engine.json from
//     the same machine, warm mixed-workload per-request time must not
//     regress by more than 5% (the gate stays disarmed without a
//     baseline — cross-machine wall-clock comparisons are noise).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "service/engine.h"
#include "service/fault_injection.h"
#include "stats/descriptive.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

nb::Graph BenchGraph() {
  return *nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 78});
}

/// Deterministic skewed trace: NoiseCorrected-heavy method mix, a hot
/// 0.25 threshold with a tail of scattered shares, and a rotation of
/// request kinds — the shape of a dashboard hammering one backbone view
/// while ad-hoc queries trickle in.
std::vector<nb::BackboneRequest> BuildTrace(uint64_t fingerprint, int n,
                                            uint64_t seed) {
  nb::Rng rng(seed);
  std::vector<nb::BackboneRequest> trace;
  trace.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    nb::BackboneRequest request;
    request.graph = fingerprint;
    const double m = rng.NextDouble();
    request.method = m < 0.60   ? nb::Method::kNoiseCorrected
                     : m < 0.80 ? nb::Method::kDisparityFilter
                     : m < 0.95 ? nb::Method::kNaiveThreshold
                                : nb::Method::kHighSalienceSkeleton;
    const double share =
        rng.NextDouble() < 0.5 ? 0.25 : rng.Uniform(0.05, 0.95);
    const double k = rng.NextDouble();
    if (k < 0.55) {
      request.kind = nb::RequestKind::kTopShare;
      request.share = share;
    } else if (k < 0.75) {
      request.kind = nb::RequestKind::kCoveragePoint;
      request.share = share;
    } else if (k < 0.90) {
      request.kind = nb::RequestKind::kTopK;
      request.k = rng.UniformInt(10, 500);
    } else {
      request.kind = nb::RequestKind::kSweep;
      request.shares = {0.1, 0.25, 0.5, share};
    }
    trace.push_back(std::move(request));
  }
  return trace;
}

bool SameResponse(const nb::BackboneResponse& a,
                  const nb::BackboneResponse& b) {
  return a.kept_edges == b.kept_edges && a.kept == b.kept &&
         a.coverage == b.coverage && a.weight_share == b.weight_share &&
         a.sweep == b.sweep && a.connect_k == b.connect_k &&
         a.stability == b.stability;
}

bool TypedFailure(const nb::Status& status) {
  return status.IsUnavailable() || status.IsResourceExhausted() ||
         status.IsDeadlineExceeded() || status.IsCancelled();
}

/// Pulls the warm_mixed_per_request median_ns out of a
/// BENCH_serving_engine.json (the flat format JsonBenchLog writes).
double BaselineWarmPerRequestNs(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) return -1.0;
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(in);
  const size_t record = text.find("\"warm_mixed_per_request\"");
  if (record == std::string::npos) return -1.0;
  const size_t field = text.find("\"median_ns\": ", record);
  if (field == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + field + std::strlen("\"median_ns\": "),
                     nullptr);
}

}  // namespace

int main() {
  Banner("fault tolerance",
         "chaos replay of a skewed trace with seeded fault injection");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("fault_tolerance");
  bool ok = true;

  const nb::Graph graph = BenchGraph();
  const int64_t num_edges = graph.num_edges();
  const int trace_len = quick ? 96 : 480;
  constexpr int kBatchSize = 8;
  constexpr uint64_t kTraceSeed = 0x5EED5EED;

  // ---------------------------------------------------------------------
  // Fault-free reference: the trace's exact answers.
  // ---------------------------------------------------------------------
  std::vector<nb::Result<nb::BackboneResponse>> reference;
  {
    nb::BackboneEngine engine;
    const uint64_t fp = engine.AddGraph(BenchGraph());
    const auto trace = BuildTrace(fp, trace_len, kTraceSeed);
    reference.reserve(trace.size());
    for (const auto& request : trace) {
      reference.push_back(engine.Execute(request));
      if (!reference.back().ok()) ok = false;
    }
  }

  // ---------------------------------------------------------------------
  // Chaos replays: same trace through Submit batches under injection.
  // ---------------------------------------------------------------------
  PrintRow({"fault rate", "ok", "failed", "retries", "dl hits",
            "cache drops", "identical"});
  for (const double rate : {0.01, 0.05}) {
    nb::FaultInjector injector(0xC0FFEE00 +
                               static_cast<uint64_t>(rate * 1000.0));
    injector.Configure(nb::FaultSite::kScoringFailure,
                       {.probability = rate});
    injector.Configure(nb::FaultSite::kScoringLatency,
                       {.probability = rate,
                        .latency = std::chrono::microseconds(500)});
    injector.Configure(nb::FaultSite::kCacheInsertFailure,
                       {.probability = rate});
    injector.Configure(nb::FaultSite::kDispatcherStall,
                       {.probability = rate,
                        .latency = std::chrono::microseconds(500)});

    // A 1-byte cache budget evicts every entry on insert, so (almost)
    // every request rescores — without this the trace is warm after four
    // cold scorings and the injection sites see next to no draws.
    nb::BackboneEngineOptions options;
    options.cache_byte_budget = 1;
    nb::BackboneEngine engine(options);
    const uint64_t fp = engine.AddGraph(BenchGraph());
    const auto trace = BuildTrace(fp, trace_len, kTraceSeed);

    int64_t ok_count = 0;
    int64_t failed = 0;
    bool identical = true;
    {
      nb::ScopedFaultInjection scope(&injector);
      std::vector<std::future<std::vector<nb::Result<nb::BackboneResponse>>>>
          futures;
      for (size_t begin = 0; begin < trace.size(); begin += kBatchSize) {
        const size_t end = std::min(begin + kBatchSize, trace.size());
        futures.push_back(engine.Submit(std::vector<nb::BackboneRequest>(
            trace.begin() + static_cast<ptrdiff_t>(begin),
            trace.begin() + static_cast<ptrdiff_t>(end))));
      }
      size_t index = 0;
      for (auto& future : futures) {
        // Deadlock gate: a future that does not resolve inside the
        // global timeout means the dispatcher wedged under injection.
        if (future.wait_for(std::chrono::seconds(120)) !=
            std::future_status::ready) {
          std::printf("DEADLOCK: batch future unresolved after 120 s\n");
          ok = false;
          identical = false;
          break;
        }
        for (const auto& result : future.get()) {
          const auto& ref = reference[index++];
          if (result.ok()) {
            ++ok_count;
            // Bit-identical to the fault-free answer or flagged: the
            // trace never opts into degradation, so here it must be
            // bit-identical outright.
            if (result->degraded || !ref.ok() ||
                !SameResponse(*result, *ref)) {
              identical = false;
            }
          } else {
            ++failed;
            if (!TypedFailure(result.status())) {
              std::printf("untyped failure under chaos: %s\n",
                          result.status().message().c_str());
              identical = false;
            }
          }
        }
      }
    }
    const auto stats = engine.stats();
    if (!identical) ok = false;
    // Retry must absorb nearly all of the injected pressure: with
    // max_retries=3 a 5% per-attempt failure rate leaves ~6e-6 residual.
    if (failed > trace_len / 20) ok = false;
    PrintRow({Num(rate, 2), std::to_string(ok_count),
              std::to_string(failed), std::to_string(stats.retries),
              std::to_string(stats.deadline_hits),
              std::to_string(stats.cache.insert_failures),
              identical ? "PASS" : "FAIL"});
  }

  // ---------------------------------------------------------------------
  // Deadline promptness: a request whose cold path is pinned behind
  // injected latency must come back within deadline + one grain.
  // ---------------------------------------------------------------------
  {
    const auto injected_latency =
        std::chrono::milliseconds(quick ? 100 : 200);
    const auto timeout = std::chrono::milliseconds(20);
    // One cancellation-check grain: the 1ms InterruptibleSleep slice (the
    // scoring-chunk checks are far finer on this graph), plus scheduling
    // slack for CI boxes.
    const auto grain = std::chrono::milliseconds(25);
    nb::FaultInjector injector(0xDEAD715E);
    injector.Configure(nb::FaultSite::kScoringLatency,
                       {.probability = 1.0, .latency = injected_latency});
    nb::BackboneEngine engine;
    const uint64_t fp = engine.AddGraph(BenchGraph());
    nb::ScopedFaultInjection scope(&injector);
    for (int rep = 0; rep < 3; ++rep) {
      nb::BackboneRequest request;
      request.graph = fp;
      request.method = nb::Method::kNoiseCorrected;
      request.kind = nb::RequestKind::kTopShare;
      request.share = 0.25;
      request.timeout = timeout;
      nb::Timer timer;
      const auto result = engine.Execute(request);
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::duration<double>(timer.ElapsedSeconds()));
      const bool typed = !result.ok() && result.status().IsDeadlineExceeded();
      const bool prompt = elapsed <= timeout + grain;
      if (!typed || !prompt) ok = false;
      std::printf(
          "deadline rep %d: %s in %lld ms (budget %lld + grain %lld): %s\n",
          rep, typed ? "kDeadlineExceeded" : "WRONG STATUS",
          static_cast<long long>(elapsed.count()),
          static_cast<long long>(timeout.count()),
          static_cast<long long>(grain.count()),
          typed && prompt ? "PASS" : "FAIL");
    }
    if (engine.stats().deadline_hits < 3) ok = false;
  }

  // ---------------------------------------------------------------------
  // Degradation: with the exact path pinned behind latency, an opted-in
  // request on a revision graph is served from the warm ancestor's exact
  // artifacts, flagged, with the exact recompute queued behind it.
  // ---------------------------------------------------------------------
  {
    nb::BackboneEngineOptions options;
    options.enable_delta_rescore = false;  // force the (stalled) full path
    nb::BackboneEngine engine(options);
    const uint64_t base = engine.AddGraph(BenchGraph());
    const uint64_t revision = engine.AddGraphRevision(
        *nb::GenerateErdosRenyi(
            {.num_nodes = 2000, .average_degree = 3.0, .seed = 79}),
        base);

    nb::BackboneRequest warm;
    warm.graph = base;
    warm.method = nb::Method::kNoiseCorrected;
    warm.kind = nb::RequestKind::kTopShare;
    warm.share = 0.25;
    const auto warm_ref = engine.Execute(warm);
    if (!warm_ref.ok()) ok = false;

    nb::FaultInjector injector(0xDE62ADED);
    injector.Configure(nb::FaultSite::kScoringLatency,
                       {.probability = 1.0,
                        .latency = std::chrono::milliseconds(200)});
    bool degraded_ok = false;
    {
      nb::ScopedFaultInjection scope(&injector);
      nb::BackboneRequest request = warm;
      request.graph = revision;
      request.timeout = std::chrono::milliseconds(10);
      request.allow_degraded = true;
      const auto result = engine.Execute(request);
      degraded_ok = result.ok() && result->degraded &&
                    result->degraded_from == base && warm_ref.ok() &&
                    SameResponse(*result, *warm_ref);
    }
    const auto stats = engine.stats();
    if (!degraded_ok || stats.degraded_served < 1 ||
        stats.background_refreshes < 1) {
      ok = false;
    }
    std::printf("degraded serve from warm ancestor: %s "
                "(served %lld, refreshes queued %lld)\n",
                degraded_ok ? "PASS" : "FAIL",
                static_cast<long long>(stats.degraded_served),
                static_cast<long long>(stats.background_refreshes));
  }

  // ---------------------------------------------------------------------
  // Warm-path cost of the hooks: injection disabled, mixed warm workload
  // (the serving bench's shape), compared against a recorded baseline
  // when one is provided.
  // ---------------------------------------------------------------------
  {
    const std::vector<nb::Method> methods = {
        nb::Method::kNaiveThreshold, nb::Method::kDisparityFilter,
        nb::Method::kNoiseCorrected, nb::Method::kHighSalienceSkeleton};
    nb::BackboneEngine engine;
    const uint64_t fp = engine.AddGraph(BenchGraph());
    for (const nb::Method method : methods) {
      nb::BackboneRequest request;
      request.graph = fp;
      request.method = method;
      request.kind = nb::RequestKind::kTopShare;
      request.share = 0.25;
      if (!engine.Execute(request).ok()) ok = false;
    }
    const int requests = quick ? 200 : 2000;
    nb::Timer timer;
    for (int r = 0; r < requests; ++r) {
      nb::BackboneRequest request;
      request.graph = fp;
      request.method = methods[static_cast<size_t>(r) % methods.size()];
      request.kind = nb::RequestKind::kTopShare;
      request.share = 0.05 + 0.9 * static_cast<double>(r) / requests;
      if (r % 3 == 1) {
        request.kind = nb::RequestKind::kCoveragePoint;
      } else if (r % 3 == 2) {
        request.kind = nb::RequestKind::kTopK;
        request.k = 100 + r;
      }
      if (!engine.Execute(request).ok()) ok = false;
    }
    const double per_request = timer.ElapsedSeconds() / requests;
    json.RecordSeconds("warm_mixed_per_request", num_edges, 1, per_request,
                       per_request);
    const char* baseline_path = std::getenv("NETBONE_BENCH_BASELINE");
    if (baseline_path != nullptr && *baseline_path != '\0') {
      const double baseline_ns = BaselineWarmPerRequestNs(baseline_path);
      if (baseline_ns > 0.0) {
        const double ratio = per_request * 1e9 / baseline_ns;
        const bool within = ratio <= 1.05;
        if (!within) ok = false;
        std::printf(
            "warm per-request %s us vs baseline %s us (ratio %s, "
            "<= 1.05 required): %s\n",
            Num(per_request * 1e6, 2).c_str(),
            Num(baseline_ns * 1e-3, 2).c_str(), Num(ratio, 3).c_str(),
            within ? "PASS" : "FAIL");
      } else {
        std::printf("warm-regression gate: baseline %s unreadable, "
                    "gate disarmed\n", baseline_path);
      }
    } else {
      std::printf("warm per-request %s us "
                  "(set NETBONE_BENCH_BASELINE=BENCH_serving_engine.json "
                  "to arm the <5%% regression gate)\n",
                  Num(per_request * 1e6, 2).c_str());
    }
  }

  std::printf("\n%lld edges, %d-request trace; chaos gates: %s\n",
              static_cast<long long>(num_edges), trace_len,
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
