#!/usr/bin/env bash
# Records one bench snapshot: runs the smoke-labeled harnesses (quick mode)
# with their JSON logs redirected into a timestamped directory under
# bench/history/, so the perf trajectory accumulates across PRs and
# compare_bench_json.py can diff the latest two runs. Harnesses that dump
# a metrics snapshot (METRICS_*.json — bench_observability's merged
# registry readout, including exported latency percentiles) honour the
# same NETBONE_BENCH_JSON_DIR redirect, so those are archived alongside
# the timing logs.
#
# Usage: snapshot_bench.sh <build-dir> [label]
set -euo pipefail

build=${1:?usage: snapshot_bench.sh <build-dir> [label]}
# Labels always carry a timestamp prefix so snapshot names sort
# chronologically — compare_bench_json.py picks the latest two by name —
# and a host tag so snapshots from different machines are never diffed
# against each other by accident.
host=$(hostname -s 2>/dev/null || echo unknown)
stamp=$(date +%Y%m%d-%H%M%S)-$host
label=${2:+$stamp-$2}
label=${label:-$stamp}
history_dir="$(cd "$(dirname "$0")" && pwd)/history/$label"

mkdir -p "$history_dir"
NETBONE_BENCH_JSON_DIR="$history_dir" ctest --test-dir "$build" -L smoke \
  --output-on-failure
bench_count=$(ls "$history_dir"/BENCH_*.json 2>/dev/null | wc -l)
metrics_count=$(ls "$history_dir"/METRICS_*.json 2>/dev/null | wc -l)
echo "recorded $bench_count bench + $metrics_count metrics JSON file(s)" \
     "under $history_dir"
