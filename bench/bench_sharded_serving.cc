// Acceptance harness for sharded serving (src/service/sharded_engine.h):
// N engine shards behind a fingerprint router must answer bit-identically
// to a 1-shard deployment, scale warm throughput with shard count, keep
// lineage families co-located through hot-shard rebalance, and warm-
// restart every shard from its own snapshot subdirectory with ZERO
// rescores and ZERO sorts.
//
// Contract being demonstrated (and enforced — the process exits non-zero
// on any violation):
//   * phase A records a mixed trace (5 fingerprints, one a registered
//     revision, x {NC, DF, NT} x {TopShare, TopK, CoveragePoint, Sweep})
//     against a bare BackboneEngine — the 1-shard reference;
//   * phase B replays the identical upload order + trace on sharded
//     engines with 1, 2 and 4 shards: fingerprints match, every response
//     is payload-identical to the reference at every shard count, the
//     warm second pass is all cache hits with zero sorts, and the
//     revision is pinned to its base's shard (this gate is ALWAYS armed,
//     including quick mode and sanitizer builds);
//   * phase C measures warm throughput on 1 vs 4 shards with one client
//     thread per hardware thread; the >= 1.8x ratio gate arms only on
//     hosts with >= 4 hardware threads and non-sanitizer builds (the
//     ratio is still measured and logged elsewhere);
//   * phase D skews load onto one lineage family sharing a shard with an
//     independent hot fingerprint, runs RebalanceNow twice (migrate,
//     then retire), and requires: the family moved *together*, replays
//     stay bit-identical and fully warm (zero rescores, zero sorts), a
//     post-migration revision still rides the delta warm path on the
//     *target* shard, and the source actually retired its copy;
//   * phase E reboots the 4-shard engine on the same snapshot root:
//     every shard restores its slice, the router self-heals the migrated
//     family's overrides, and the full trace replays bit-identically
//     with scores_computed == 0 and SortsPerformed unchanged.
//
// Warm throughput (req/s at 1 and 4 shards, plus the ratio) lands in
// BENCH_sharded_serving.json.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/builder.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "gen/erdos_renyi.h"
#include "service/engine.h"
#include "service/graph_store.h"
#include "service/sharded_engine.h"
#include "stats/descriptive.h"

namespace nb = netbone;
namespace fs = std::filesystem;
using netbone::bench::Banner;
using netbone::bench::Num;
using netbone::bench::PrintRow;

namespace {

/// Field-exact response comparison (BackboneResponse has no operator==;
/// cache_hit/degraded are provenance, not payload, so they are excluded).
bool SamePayload(const nb::BackboneResponse& a,
                 const nb::BackboneResponse& b) {
  return a.kept_edges == b.kept_edges && a.kept == b.kept &&
         a.coverage == b.coverage && a.weight_share == b.weight_share &&
         a.sweep == b.sweep && a.connect_k == b.connect_k &&
         a.stability == b.stability;
}

/// The recorded trace: every (graph, method) pair exercised through every
/// warm-servable request kind.
std::vector<nb::BackboneRequest> BuildTrace(
    const std::vector<uint64_t>& fingerprints) {
  const std::vector<nb::Method> methods = {nb::Method::kNoiseCorrected,
                                           nb::Method::kDisparityFilter,
                                           nb::Method::kNaiveThreshold};
  std::vector<nb::BackboneRequest> trace;
  for (const uint64_t fingerprint : fingerprints) {
    for (const nb::Method method : methods) {
      nb::BackboneRequest share;
      share.graph = fingerprint;
      share.method = method;
      share.kind = nb::RequestKind::kTopShare;
      share.share = 0.25;
      trace.push_back(share);

      nb::BackboneRequest topk = share;
      topk.kind = nb::RequestKind::kTopK;
      topk.k = 150;
      trace.push_back(topk);

      nb::BackboneRequest point = share;
      point.kind = nb::RequestKind::kCoveragePoint;
      point.share = 0.4;
      trace.push_back(point);

      nb::BackboneRequest sweep = share;
      sweep.kind = nb::RequestKind::kSweep;
      sweep.shares = {0.1, 0.3, 0.5, 0.8};
      trace.push_back(sweep);
    }
  }
  return trace;
}

/// Runs the trace, appending each response; false on any request failure.
/// Works against both BackboneEngine and ShardedBackboneEngine.
template <typename EngineT>
bool RunTrace(EngineT& engine, const std::vector<nb::BackboneRequest>& trace,
              std::vector<nb::BackboneResponse>* out) {
  bool ok = true;
  for (const nb::BackboneRequest& request : trace) {
    auto response = engine.Execute(request);
    if (!response.ok()) {
      std::printf("  request failed: %s\n",
                  response.status().message().c_str());
      ok = false;
      out->emplace_back();
      continue;
    }
    out->push_back(*std::move(response));
  }
  return ok;
}

/// A noisy re-observation: moves one unit of weight between `transfers`
/// random edge pairs. Totals are bitwise preserved, so the NC delta warm
/// path stays applicable.
nb::Graph TransferWeight(const nb::Graph& base, int64_t transfers,
                         uint64_t seed) {
  std::vector<nb::Edge> edges(base.edges().begin(), base.edges().end());
  nb::Rng rng(seed);
  for (int64_t t = 0; t < transfers; ++t) {
    const size_t a = static_cast<size_t>(rng.NextBounded(edges.size()));
    const size_t b = static_cast<size_t>(rng.NextBounded(edges.size()));
    if (a == b || edges[a].weight < 2.0) continue;
    edges[a].weight -= 1.0;
    edges[b].weight += 1.0;
  }
  nb::GraphBuilder builder(base.directedness());
  builder.ReserveNodes(base.num_nodes());
  for (const nb::Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return *builder.Build();
}

nb::Graph IntWeightEr(int num_nodes, uint64_t seed) {
  const auto er = nb::GenerateErdosRenyi(
      {.num_nodes = num_nodes, .average_degree = 3.0, .seed = seed});
  // Integer-ish weights >= 1 so TransferWeight has room to move units.
  nb::GraphBuilder builder(nb::Directedness::kUndirected);
  builder.ReserveNodes(num_nodes);
  for (const nb::Edge& e : er->edges()) {
    builder.AddEdge(e.src, e.dst, std::floor(e.weight * 3.0) + 2.0);
  }
  return *builder.Build();
}

/// Warm req/s with one client thread per `threads`, each replaying the
/// trace round-robin from a private offset. Every request is a cache hit,
/// so this isolates router + shard lookup + response copy.
double MeasureWarmThroughput(nb::ShardedBackboneEngine& engine,
                             const std::vector<nb::BackboneRequest>& trace,
                             int threads, int iterations) {
  std::vector<std::thread> clients;
  nb::Timer timer;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&engine, &trace, t, iterations]() {
      const size_t n = trace.size();
      size_t at = (static_cast<size_t>(t) * 7) % n;
      for (int i = 0; i < iterations; ++i) {
        (void)engine.Execute(trace[at]);
        at = (at + 1) % n;
      }
    });
  }
  for (std::thread& c : clients) c.join();
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(threads) * iterations / seconds;
}

}  // namespace

int main() {
  Banner("sharded serving",
         "N-shard fingerprint routing: bit-identical responses, warm "
         "scaling, rebalance + per-shard warm restart");
  const bool quick = netbone::bench::QuickMode();
  netbone::bench::JsonBenchLog json("sharded_serving");
  bool ok = true;

  const fs::path root = fs::temp_directory_path() / "netbone_sharded_bench";
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root);

  // Four base graphs plus one registered revision of the first — the
  // revision exercises pinned routing and the delta warm path.
  const int base_nodes = quick ? 300 : 1200;
  std::vector<nb::Graph> graphs;
  for (int i = 0; i < 4; ++i) {
    graphs.push_back(
        IntWeightEr(base_nodes + 150 * i, 400u + static_cast<uint64_t>(i)));
  }
  const nb::Graph revision = TransferWeight(graphs[0], 6, 7);

  // ---- Phase A: 1-shard reference (a bare BackboneEngine). ------------
  std::vector<uint64_t> fingerprints;
  std::vector<nb::BackboneRequest> trace;
  std::vector<nb::BackboneResponse> reference;
  {
    nb::BackboneEngine engine;
    for (const nb::Graph& graph : graphs) {
      fingerprints.push_back(engine.AddGraph(graph));
    }
    fingerprints.push_back(engine.AddGraphRevision(revision, fingerprints[0]));
    trace = BuildTrace(fingerprints);
    if (!RunTrace(engine, trace, &reference)) ok = false;
    std::printf("phase A: %zu requests recorded, %lld scores computed\n",
                trace.size(),
                static_cast<long long>(engine.stats().scores_computed));
  }

  // ---- Phase B: bit-identity at every shard count (always armed). -----
  PrintRow({"\nphase B shards", "mismatch", "warm miss", "overrides",
            "pinned"});
  for (const int shards : {1, 2, 4}) {
    nb::ShardedBackboneEngineOptions options;
    options.num_shards = shards;
    nb::ShardedBackboneEngine engine(options);
    std::vector<uint64_t> fps;
    for (const nb::Graph& graph : graphs) fps.push_back(engine.AddGraph(graph));
    fps.push_back(engine.AddGraphRevision(revision, fps[0]));
    if (fps != fingerprints) {
      std::printf("shards=%d: fingerprints diverge from reference\n", shards);
      ok = false;
      continue;
    }
    const bool pinned = engine.ShardOf(fps[4]) == engine.ShardOf(fps[0]);
    if (!pinned) ok = false;

    std::vector<nb::BackboneResponse> cold;
    if (!RunTrace(engine, trace, &cold)) ok = false;
    size_t mismatches = 0;
    for (size_t i = 0; i < cold.size(); ++i) {
      if (!SamePayload(cold[i], reference[i])) ++mismatches;
    }

    // Warm second pass: all hits, zero new sorts, still identical.
    const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
    std::vector<nb::BackboneResponse> warm;
    if (!RunTrace(engine, trace, &warm)) ok = false;
    size_t warm_misses = 0;
    for (size_t i = 0; i < warm.size(); ++i) {
      if (!SamePayload(warm[i], reference[i])) ++mismatches;
      if (!warm[i].cache_hit) ++warm_misses;
    }
    if (nb::ScoreOrder::SortsPerformed() != sorts_before) {
      std::printf("shards=%d: warm replay performed sorts (want 0)\n", shards);
      ok = false;
    }
    if (mismatches != 0 || warm_misses != 0) ok = false;
    PrintRow({std::to_string(shards), std::to_string(mismatches),
              std::to_string(warm_misses),
              std::to_string(engine.stats().routing_overrides),
              pinned ? "yes" : "NO"});
  }

  // ---- Phase C: warm throughput, 1 vs 4 shards. -----------------------
  {
    const unsigned hw = std::thread::hardware_concurrency();
    const int threads = static_cast<int>(std::clamp(hw, 1u, 8u));
    const int iterations = quick ? 200 : 2000;
    const int reps = quick ? 3 : 5;
    std::vector<double> rates_1, rates_4;
    for (const int shards : {1, 4}) {
      nb::ShardedBackboneEngineOptions options;
      options.num_shards = shards;
      nb::ShardedBackboneEngine engine(options);
      std::vector<uint64_t> fps;
      for (const nb::Graph& graph : graphs) {
        fps.push_back(engine.AddGraph(graph));
      }
      fps.push_back(engine.AddGraphRevision(revision, fps[0]));
      std::vector<nb::BackboneResponse> warmup;
      RunTrace(engine, trace, &warmup);  // everything cached from here on
      std::vector<double>& rates = shards == 1 ? rates_1 : rates_4;
      for (int rep = 0; rep < reps; ++rep) {
        rates.push_back(
            MeasureWarmThroughput(engine, trace, threads, iterations));
      }
    }
    const double median_1 = nb::Median(rates_1);
    const double median_4 = nb::Median(rates_4);
    const double ratio = median_4 / median_1;
    PrintRow({"\nphase C", "threads", "1-shard/s", "4-shard/s", "ratio"});
    PrintRow({"", std::to_string(threads), Num(median_1, 0), Num(median_4, 0),
              Num(ratio, 2)});
    json.RecordSeconds("warm_1shard", static_cast<int64_t>(trace.size()),
                       threads, 1.0 / median_1, 1.0 / median_1);
    json.RecordSeconds("warm_4shard", static_cast<int64_t>(trace.size()),
                       threads, 1.0 / median_4, 1.0 / median_4);
    json.Record("scaling_ratio_x100", 4, threads, ratio * 100.0,
                ratio * 100.0);
    const bool gate_armed = hw >= 4 && !netbone::bench::SanitizerBuild();
    if (!gate_armed) {
      std::printf("scaling gate skipped (%u hw threads%s)\n", hw,
                  netbone::bench::SanitizerBuild() ? ", sanitizer build" : "");
    } else if (ratio < 1.8) {
      std::printf("warm scaling 1->4 shards %.2fx (want >= 1.8x)\n", ratio);
      ok = false;
    }
  }

  // ---- Phase D: hot-family rebalance drill (4 shards). ----------------
  // Layout: a lineage family {A, A'} sharing a shard with an independent
  // hot fingerprint B (found by deterministic seed search), so the family
  // is migratable — moving it narrows the load gap without emptying the
  // source. The drill snapshots into `root`, which phase E reboots.
  int target_shard = -1;
  int source_shard = -1;
  std::vector<uint64_t> drill_fps;
  std::vector<nb::BackboneRequest> drill_trace;
  std::vector<nb::BackboneResponse> drill_reference;
  {
    nb::ShardedBackboneEngineOptions options;
    options.num_shards = 4;
    options.engine.snapshot_dir = root.string();
    options.engine.snapshot_on_shutdown = false;
    nb::ShardedBackboneEngine engine(options);

    const int drill_nodes = quick ? 250 : 800;
    const nb::Graph graph_a = IntWeightEr(drill_nodes, 900);
    source_shard = engine.ShardOf(nb::GraphFingerprint(graph_a));
    nb::Graph graph_b;
    for (uint64_t seed = 901;; ++seed) {
      graph_b = IntWeightEr(drill_nodes + 37, seed);
      if (engine.ShardOf(nb::GraphFingerprint(graph_b)) == source_shard &&
          nb::GraphFingerprint(graph_b) != nb::GraphFingerprint(graph_a)) {
        break;
      }
    }
    const uint64_t fp_a = engine.AddGraph(graph_a);
    const uint64_t fp_rev =
        engine.AddGraphRevision(TransferWeight(graph_a, 5, 11), fp_a);
    const uint64_t fp_b = engine.AddGraph(graph_b);
    drill_fps = {fp_a, fp_rev, fp_b};
    drill_trace = BuildTrace(drill_fps);
    if (!RunTrace(engine, drill_trace, &drill_reference)) ok = false;

    // Skew the load counters: family {A, A'} dominates, but B keeps the
    // source shard warm enough that migrating the family narrows the gap
    // instead of just relabeling the hottest shard.
    nb::BackboneRequest hot;
    hot.method = nb::Method::kNoiseCorrected;
    hot.kind = nb::RequestKind::kTopShare;
    hot.share = 0.25;
    for (int i = 0; i < 300; ++i) {
      hot.graph = fp_a;
      (void)engine.Execute(hot);
      if (i < 150) {
        hot.graph = fp_rev;
        (void)engine.Execute(hot);
      }
      if (i < 100) {
        hot.graph = fp_b;
        (void)engine.Execute(hot);
      }
    }

    const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
    const int64_t scores_before = engine.stats().total.scores_computed;
    const int moved = engine.RebalanceNow();
    const auto mid = engine.stats();
    if (moved < 1 || mid.migrations < 1) {
      std::printf("rebalance moved %d families (want >= 1)\n", moved);
      ok = false;
    }
    target_shard = engine.ShardOf(fp_a);
    const bool family_together = engine.ShardOf(fp_rev) == target_shard;
    if (target_shard == source_shard || !family_together) {
      std::printf("family routing after rebalance: A->%d A'->%d (src %d)\n",
                  target_shard, engine.ShardOf(fp_rev), source_shard);
      ok = false;
    }
    if (engine.ShardOf(fp_b) != source_shard) {
      std::printf("independent fingerprint B moved (want stay on %d)\n",
                  source_shard);
      ok = false;
    }

    // Replay: bit-identical, fully warm — the migrated cache entries
    // serve, nothing is rescored or re-sorted.
    std::vector<nb::BackboneResponse> replay;
    if (!RunTrace(engine, drill_trace, &replay)) ok = false;
    size_t mismatches = 0, misses = 0;
    for (size_t i = 0; i < replay.size(); ++i) {
      if (!SamePayload(replay[i], drill_reference[i])) ++mismatches;
      if (!replay[i].cache_hit) ++misses;
    }
    const auto after = engine.stats();
    if (after.total.scores_computed != scores_before) {
      std::printf("post-migration replay rescored %lld keys (want 0)\n",
                  static_cast<long long>(after.total.scores_computed -
                                         scores_before));
      ok = false;
    }
    if (nb::ScoreOrder::SortsPerformed() != sorts_before) {
      std::printf("post-migration replay performed sorts (want 0)\n");
      ok = false;
    }
    if (mismatches != 0 || misses != 0) {
      std::printf("post-migration replay: %zu mismatched, %zu misses\n",
                  mismatches, misses);
      ok = false;
    }

    // Lineage survives migration: a new revision of the *migrated* head
    // pins to the target shard and rides the delta warm path there.
    const int64_t target_deltas_before =
        engine.stats().shards[static_cast<size_t>(target_shard)].delta_rescores;
    const uint64_t fp_child =
        engine.AddGraphRevision(TransferWeight(graph_a, 4, 13), fp_rev);
    if (engine.ShardOf(fp_child) != target_shard) {
      std::printf("post-migration revision routed to %d (want %d)\n",
                  engine.ShardOf(fp_child), target_shard);
      ok = false;
    }
    nb::BackboneRequest child = hot;
    child.graph = fp_child;
    const auto child_response = engine.Execute(child);
    if (!child_response.ok()) ok = false;
    const int64_t target_deltas =
        engine.stats().shards[static_cast<size_t>(target_shard)].delta_rescores;
    if (target_deltas <= target_deltas_before) {
      std::printf("migrated lineage did not delta-patch on target shard\n");
      ok = false;
    }

    // Second cycle retires the source copy (the grace period elapses).
    (void)engine.RebalanceNow();
    if (engine.shard(source_shard).FindGraph(fp_a) != nullptr) {
      std::printf("source shard still holds migrated graph after retire\n");
      ok = false;
    }

    PrintRow({"\nphase D", "moved", "src", "dst", "identical"});
    PrintRow({"", std::to_string(moved), std::to_string(source_shard),
              std::to_string(target_shard), mismatches == 0 ? "yes" : "NO"});

    const nb::Status wrote = engine.WriteSnapshotNow();
    if (!wrote.ok()) {
      std::printf("sharded snapshot failed: %s\n", wrote.message().c_str());
      ok = false;
    }
  }

  // ---- Phase E: per-shard warm restart + router self-heal. ------------
  {
    nb::ShardedBackboneEngineOptions options;
    options.num_shards = 4;
    options.engine.snapshot_dir = root.string();
    options.engine.snapshot_on_shutdown = false;
    nb::Timer boot;
    nb::ShardedBackboneEngine engine(options);
    const double boot_seconds = boot.ElapsedSeconds();
    const auto stats = engine.stats();
    if (stats.total.restored_entries <= 0 || stats.total.restored_graphs <= 0) {
      std::printf("sharded restore salvaged nothing\n");
      ok = false;
    }
    if (stats.total.quarantined_sections != 0) {
      std::printf("clean sharded snapshot quarantined %lld sections\n",
                  static_cast<long long>(stats.total.quarantined_sections));
      ok = false;
    }
    // Self-heal: the migrated family must still route to the shard that
    // holds it, not back to its hash shard.
    if (engine.ShardOf(drill_fps[0]) != target_shard ||
        engine.ShardOf(drill_fps[1]) != target_shard) {
      std::printf("self-heal lost the migration (A->%d A'->%d, want %d)\n",
                  engine.ShardOf(drill_fps[0]), engine.ShardOf(drill_fps[1]),
                  target_shard);
      ok = false;
    }

    const int64_t sorts_before = nb::ScoreOrder::SortsPerformed();
    std::vector<nb::BackboneResponse> replay;
    if (!RunTrace(engine, drill_trace, &replay)) ok = false;
    size_t mismatches = 0, misses = 0;
    for (size_t i = 0; i < replay.size(); ++i) {
      if (!SamePayload(replay[i], drill_reference[i])) ++mismatches;
      if (!replay[i].cache_hit) ++misses;
    }
    if (engine.stats().total.scores_computed != 0) {
      std::printf("sharded warm restart recomputed %lld scores (want 0)\n",
                  static_cast<long long>(engine.stats().total.scores_computed));
      ok = false;
    }
    if (nb::ScoreOrder::SortsPerformed() != sorts_before) {
      std::printf("sharded warm restart performed sorts (want 0)\n");
      ok = false;
    }
    if (mismatches != 0 || misses != 0) {
      std::printf("sharded warm replay: %zu mismatched, %zu misses\n",
                  mismatches, misses);
      ok = false;
    }
    PrintRow({"\nphase E", "entries", "graphs", "boot ms", "identical"});
    PrintRow({"", std::to_string(stats.total.restored_entries),
              std::to_string(stats.total.restored_graphs),
              Num(boot_seconds * 1e3, 2), mismatches == 0 ? "yes" : "NO"});
    json.RecordSeconds("sharded_warm_boot", stats.total.restored_entries, 4,
                       boot_seconds, boot_seconds);
  }

  fs::remove_all(root, ec);
  std::printf("\nsharded-serving gates (identity at 1/2/4 shards, rebalance "
              "bit-identity, lineage co-location, per-shard warm restart): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
