// Regenerates paper Fig. 4: recovery of the true backbone of synthetic
// Barabási–Albert networks under increasing noise.
//
// Workload (Sec. V-A): BA networks with 200 nodes and average degree 3;
// true edges weighted (k_i + k_j) * U(eta, 1), the complement filled with
// (k_i + k_j) * U(0, eta). Every method is matched to the true edge count
// and scored by the Jaccard coefficient between its backbone and the true
// edge set, averaged over seeds.
//
// Paper shape to reproduce: NT and DF are best at very low noise; NC is
// the most noise-resilient with the best overall performance; MST and HSS
// sit below; at high noise DF degrades toward NT.

#include <cmath>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "eval/edge_budget.h"
#include "eval/recovery.h"
#include "gen/barabasi_albert.h"
#include "gen/noise_model.h"

namespace nb = netbone;
using netbone::bench::Banner;
using netbone::bench::NaN;
using netbone::bench::Num;
using netbone::bench::PrintRow;

int main() {
  Banner("Fig. 4", "recovery of the true backbone of synthetic BA networks");

  const bool quick = netbone::bench::QuickMode();
  const int num_seeds = quick ? 2 : 5;
  const nb::NodeId num_nodes = quick ? 100 : 200;
  const std::vector<double> etas = {0.0,  0.05, 0.10, 0.15,
                                    0.20, 0.25, 0.30};

  std::vector<std::string> header = {"eta"};
  for (const nb::Method m : nb::PaperMethods()) {
    header.push_back(nb::MethodTag(m));
  }
  PrintRow(header);

  for (const double eta : etas) {
    std::map<nb::Method, double> total;
    std::map<nb::Method, int> valid;
    for (int seed = 0; seed < num_seeds; ++seed) {
      const auto truth = nb::GenerateBarabasiAlbert(
          {.num_nodes = num_nodes,
           .average_degree = 3.0,
           .seed = static_cast<uint64_t>(1000 + seed)});
      if (!truth.ok()) continue;
      const auto noisy = nb::ApplySectionVANoise(
          *truth, eta, static_cast<uint64_t>(9000 + seed));
      if (!noisy.ok()) continue;
      for (const nb::Method m : nb::PaperMethods()) {
        const auto mask =
            nb::BudgetedBackbone(m, noisy->noisy, noisy->num_true_edges);
        if (!mask.ok()) continue;  // e.g. DS without total support
        const auto jaccard =
            nb::JaccardRecovery(mask->keep, noisy->ground_truth);
        if (!jaccard.ok()) continue;
        total[m] += *jaccard;
        valid[m] += 1;
      }
    }
    std::vector<std::string> row = {Num(eta, 2)};
    for (const nb::Method m : nb::PaperMethods()) {
      row.push_back(valid[m] > 0 ? Num(total[m] / valid[m], 3)
                                 : Num(NaN()));
    }
    PrintRow(row);
  }

  std::printf(
      "\nPaper reference: NC has the best overall recovery and degrades\n"
      "most slowly with noise; NT/DF lead only at the lowest noise "
      "levels.\n");
  return 0;
}
