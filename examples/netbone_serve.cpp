// Serving-engine tour: stand up a BackboneEngine, intern a few networks
// (one submitted twice to show content-addressed dedup), replay a
// deterministic request trace through the async Submit pipeline, and dump
// the engine's cache statistics.
//
//   ./example_netbone_serve [num_requests] [cache_mb]
//
// The trace mimics a production mix: a skewed graph popularity (one hot
// network), method cycling, and a mix of request kinds — threshold
// extractions, O(1) coverage points, full sweep profiles.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "service/engine.h"

namespace nb = netbone;

int main(int argc, char** argv) {
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 400;
  const int64_t cache_mb = argc > 2 ? std::atoll(argv[2]) : 64;

  nb::BackboneEngineOptions options;
  options.cache_byte_budget = cache_mb << 20;
  nb::BackboneEngine engine(options);

  // Three resident networks; the "hot" one is submitted twice and dedupes
  // to a single resident copy.
  std::vector<uint64_t> graphs;
  for (const uint64_t seed : {101, 102, 103}) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = seed == 101 ? 2000 : 800,
         .average_degree = 3.0,
         .seed = seed});
    if (!graph.ok()) {
      std::fprintf(stderr, "generator failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(engine.AddGraph(*graph));
  }
  const auto hot_again = nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 101});
  engine.AddGraph(*hot_again);  // dedup: no second resident copy

  // Deterministic trace. Graph popularity is skewed 4:1:1 toward the hot
  // network; methods and kinds cycle.
  const std::vector<nb::Method> methods = {
      nb::Method::kNoiseCorrected, nb::Method::kDisparityFilter,
      nb::Method::kNaiveThreshold, nb::Method::kMaximumSpanningTree};
  std::vector<nb::BackboneRequest> trace;
  trace.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    nb::BackboneRequest request;
    request.graph = graphs[static_cast<size_t>(i % 6 < 4 ? 0 : 1 + i % 2)];
    request.method = methods[static_cast<size_t>(i) % methods.size()];
    request.share = 0.05 + 0.9 * static_cast<double>(i % 17) / 17.0;
    switch (i % 4) {
      case 0:
        request.kind = nb::RequestKind::kTopShare;
        break;
      case 1:
        request.kind = nb::RequestKind::kCoveragePoint;
        break;
      case 2:
        request.kind = nb::RequestKind::kTopK;
        request.k = 50 + i;
        break;
      default:
        request.kind = nb::RequestKind::kSweep;
        request.shares = {0.1, 0.25, 0.5, 0.75, 1.0};
        break;
    }
    trace.push_back(std::move(request));
  }

  // Replay through the async pipeline in batches of 32.
  std::printf("replaying %d requests over %lld resident graphs...\n",
              num_requests,
              static_cast<long long>(engine.stats().graphs.graphs));
  nb::Timer timer;
  std::vector<std::future<std::vector<nb::Result<nb::BackboneResponse>>>>
      futures;
  for (size_t begin = 0; begin < trace.size(); begin += 32) {
    const size_t end = std::min(begin + 32, trace.size());
    futures.push_back(engine.Submit(std::vector<nb::BackboneRequest>(
        trace.begin() + static_cast<ptrdiff_t>(begin),
        trace.begin() + static_cast<ptrdiff_t>(end))));
  }
  int64_t ok_count = 0, failed = 0;
  for (auto& future : futures) {
    for (const auto& result : future.get()) {
      (result.ok() ? ok_count : failed)++;
    }
  }
  const double elapsed = timer.ElapsedSeconds();

  const nb::BackboneEngine::Stats stats = engine.stats();
  std::printf("\n%-28s %12lld\n", "requests ok / failed",
              static_cast<long long>(ok_count));
  std::printf("%-28s %12lld\n", "  failed",
              static_cast<long long>(failed));
  std::printf("%-28s %12.1f\n", "requests / second",
              static_cast<double>(ok_count + failed) / elapsed);
  std::printf("%-28s %12lld\n", "methods scored (cold)",
              static_cast<long long>(stats.scores_computed));
  std::printf("%-28s %12lld\n", "cache hits",
              static_cast<long long>(stats.cache.hits));
  std::printf("%-28s %12lld\n", "cache misses",
              static_cast<long long>(stats.cache.misses));
  std::printf("%-28s %12.4f\n", "hit rate",
              static_cast<double>(stats.cache.hits) /
                  static_cast<double>(stats.cache.hits +
                                      stats.cache.misses));
  std::printf("%-28s %12lld\n", "cache evictions",
              static_cast<long long>(stats.cache.evictions));
  std::printf("%-28s %12.2f\n", "cache MB",
              static_cast<double>(stats.cache.bytes) / (1 << 20));
  std::printf("%-28s %12lld\n", "resident graphs",
              static_cast<long long>(stats.graphs.graphs));
  std::printf("%-28s %12lld\n", "graph dedup hits",
              static_cast<long long>(stats.graphs.dedup_hits));
  std::printf("%-28s %12.2f\n", "resident graph MB",
              static_cast<double>(stats.graphs.resident_bytes) / (1 << 20));
  return failed == 0 ? 0 : 1;
}
