// Serving-engine tour: stand up a BackboneEngine, intern a few networks
// (one submitted twice to show content-addressed dedup), replay a
// deterministic request trace through the async Submit pipeline, and dump
// the engine's cache statistics.
//
//   ./example_netbone_serve [num_requests] [cache_mb]
//   ./example_netbone_serve --shards=N [num_requests] [cache_mb]
//   ./example_netbone_serve --chaos[=seed] [num_requests] [cache_mb]
//   ./example_netbone_serve --snapshot-dir=PATH [num_requests] [cache_mb]
//   ./example_netbone_serve --stats-interval=MS --metrics-json=PATH
//                           --trace-sample=N [num_requests] [cache_mb]
//
// The trace mimics a production mix: a skewed graph popularity (one hot
// network), method cycling, and a mix of request kinds — threshold
// extractions, O(1) coverage points, full sweep profiles.
//
// --shards=N serves the same trace through a ShardedBackboneEngine:
// every request routes to one of N independent engine shards by graph
// fingerprint (budgets split N ways, per-shard snapshot subdirectories
// under --snapshot-dir, per-shard "shardK." metric namespaces next to
// the unprefixed rollup). Responses are bit-identical at every N.
//
// --chaos replays the same trace under seeded fault injection
// (service/fault_injection.h): 2% scoring failures, 2% injected scoring
// latency, 2% dropped cache inserts and 2% dispatcher stalls — plus,
// when --snapshot-dir is given, 10% snapshot write failures, short
// reads and pre-rename kills — with every request carrying a 250 ms
// deadline and opting into degradation. The seed makes a run
// reproducible — rerunning with the same seed injects the same faults at
// the same draws. Failed requests are expected here (and typed); the
// exit code only reflects crashes/untyped failures.
//
// --snapshot-dir=PATH enables crash-safe persistence: the engine
// restores the snapshot found there at startup (a second run of this
// example serves warm from request one), writes a fresh one on clean
// shutdown, and a SIGTERM mid-replay stops the trace and snapshots
// before exiting — kill -TERM is a clean drain, not a data loss.
//
// Observability (src/obs/): the final summary always ends with the
// engine's full metric table (merged with the process-wide scheduler
// registry). --stats-interval=MS additionally dumps that table roughly
// every MS milliseconds while the replay runs, and SIGUSR1 triggers one
// on-demand dump at the next monitor tick. --metrics-json=PATH writes
// the final snapshot as BENCH_*.json-schema JSON (diffable with
// bench/compare_bench_json.py). --trace-sample=N samples every Nth
// request into the trace ring and prints the span chains of the last
// few sampled requests at exit.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/fault_injection.h"
#include "service/sharded_engine.h"

namespace nb = netbone;

namespace {

// Async-signal-safe flags: the handlers only set them; the replay loop
// and the monitor thread poll them. SIGTERM drains cleanly; SIGUSR1
// requests one metrics dump at the next monitor tick.
volatile std::sig_atomic_t g_terminate = 0;
volatile std::sig_atomic_t g_dump_metrics = 0;

void HandleSigterm(int) { g_terminate = 1; }
void HandleSigusr1(int) { g_dump_metrics = 1; }

/// Engine registry merged with the process-wide one (scheduler metrics),
/// so one dump shows the whole serving stack. With --shards=N this is
/// the rollup plus every shard's "shardK." namespace.
nb::obs::MetricsSnapshot MergedMetrics(
    const nb::ShardedBackboneEngine& engine) {
  nb::obs::MetricsSnapshot snapshot = engine.Metrics();
  snapshot.Merge(nb::obs::MetricRegistry::Global().Snapshot());
  return snapshot;
}

/// Background metrics monitor: wakes every 50 ms to honour SIGUSR1
/// promptly, and prints the full table every `interval` (0 = only on
/// signal). Stopped (and joined) before the final summary prints.
class MetricsMonitor {
 public:
  MetricsMonitor(const nb::ShardedBackboneEngine& engine,
                 std::chrono::milliseconds interval)
      : engine_(engine), interval_(interval) {
    thread_ = std::thread([this] { Run(); });
  }
  ~MetricsMonitor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void Run() {
    auto next_dump = interval_.count() > 0
                         ? std::chrono::steady_clock::now() + interval_
                         : std::chrono::steady_clock::time_point::max();
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(50),
                   [this] { return stop_; });
      if (stop_) break;
      const bool on_demand = g_dump_metrics != 0;
      const bool periodic =
          interval_.count() > 0 &&
          std::chrono::steady_clock::now() >= next_dump;
      if (!on_demand && !periodic) continue;
      g_dump_metrics = 0;
      if (periodic) next_dump += interval_;
      lock.unlock();
      std::printf("\n--- metrics %s ---\n%s",
                  on_demand ? "(SIGUSR1)" : "(interval)",
                  MergedMetrics(engine_).RenderText().c_str());
      std::fflush(stdout);
      lock.lock();
    }
  }

  const nb::ShardedBackboneEngine& engine_;
  const std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  bool chaos = false;
  uint64_t chaos_seed = 0xC7A05;
  std::string snapshot_dir;
  std::string metrics_json;
  long stats_interval_ms = 0;
  long trace_sample = 0;
  int num_shards = 1;
  int positional[2] = {400, 64};
  int positionals = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      num_shards = std::max(1, static_cast<int>(
                                   std::strtol(argv[i] + 9, nullptr, 0)));
    } else if (std::strncmp(argv[i], "--chaos", 7) == 0) {
      chaos = true;
      if (argv[i][7] == '=') {
        chaos_seed = std::strtoull(argv[i] + 8, nullptr, 0);
      }
    } else if (std::strncmp(argv[i], "--snapshot-dir=", 15) == 0) {
      snapshot_dir = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      metrics_json = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--stats-interval=", 17) == 0) {
      stats_interval_ms = std::strtol(argv[i] + 17, nullptr, 0);
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      trace_sample = std::strtol(argv[i] + 15, nullptr, 0);
    } else if (positionals < 2) {
      positional[positionals++] = std::atoi(argv[i]);
    }
  }
  const int num_requests = positional[0];
  const int64_t cache_mb = positional[1];

  nb::BackboneEngineOptions options;
  options.cache_byte_budget = cache_mb << 20;
  options.snapshot_dir = snapshot_dir;
  options.trace_sample_rate = trace_sample;
  if (chaos) {
    // Bounded admission so the stalled dispatcher exercises shedding.
    options.max_queued_batches = 8;
    options.overload_policy = nb::OverloadPolicy::kShedOldest;
  }
  // Install injection before the engine exists and keep it installed
  // until after the engine is destroyed: background refreshes may still
  // draw faults on the dispatcher thread during teardown.
  std::unique_ptr<nb::FaultInjector> injector;
  std::unique_ptr<nb::ScopedFaultInjection> injection;
  if (chaos) {
    injector = std::make_unique<nb::FaultInjector>(chaos_seed);
    injector->Configure(nb::FaultSite::kScoringFailure,
                        {.probability = 0.02});
    injector->Configure(nb::FaultSite::kScoringLatency,
                        {.probability = 0.02,
                         .latency = std::chrono::milliseconds(5)});
    injector->Configure(nb::FaultSite::kCacheInsertFailure,
                        {.probability = 0.02});
    injector->Configure(nb::FaultSite::kDispatcherStall,
                        {.probability = 0.02,
                         .latency = std::chrono::milliseconds(5)});
    if (!snapshot_dir.empty()) {
      // Snapshot I/O runs a handful of times per process (restore,
      // periodic, shutdown), so these sites get a higher rate than the
      // per-request ones to actually fire in a short demo.
      injector->Configure(nb::FaultSite::kSnapshotWriteFailure,
                          {.probability = 0.10});
      injector->Configure(nb::FaultSite::kSnapshotShortRead,
                          {.probability = 0.10});
      injector->Configure(nb::FaultSite::kSnapshotRenameKill,
                          {.probability = 0.10});
    }
    injection = std::make_unique<nb::ScopedFaultInjection>(injector.get());
    std::printf("chaos mode: seed 0x%llx, 2%% fault rates, 250 ms "
                "deadlines, degradation on\n",
                static_cast<unsigned long long>(chaos_seed));
  }
  if (!snapshot_dir.empty()) {
    std::signal(SIGTERM, HandleSigterm);
  }
  std::signal(SIGUSR1, HandleSigusr1);
  nb::ShardedBackboneEngineOptions sharded_options;
  sharded_options.num_shards = num_shards;
  sharded_options.engine = options;
  nb::ShardedBackboneEngine engine(sharded_options);
  if (num_shards > 1) {
    std::printf("sharded serving: %d shards, routing epoch %llu\n",
                engine.num_shards(),
                static_cast<unsigned long long>(engine.RoutingEpoch()));
  }
  // The monitor owns all mid-replay dumps (periodic + SIGUSR1); scoped so
  // it joins before the final summary prints.
  std::unique_ptr<MetricsMonitor> monitor = std::make_unique<MetricsMonitor>(
      engine, std::chrono::milliseconds(stats_interval_ms));
  if (!snapshot_dir.empty()) {
    const nb::BackboneEngine::Stats boot = engine.stats().total;
    std::printf("snapshot restore: %lld graphs, %lld entries, %lld "
                "lineage, %lld quarantined\n",
                static_cast<long long>(boot.restored_graphs),
                static_cast<long long>(boot.restored_entries),
                static_cast<long long>(boot.restored_lineage),
                static_cast<long long>(boot.quarantined_sections));
  }

  // Three resident networks; the "hot" one is submitted twice and dedupes
  // to a single resident copy.
  std::vector<uint64_t> graphs;
  for (const uint64_t seed : {101, 102, 103}) {
    const auto graph = nb::GenerateErdosRenyi(
        {.num_nodes = seed == 101 ? 2000 : 800,
         .average_degree = 3.0,
         .seed = seed});
    if (!graph.ok()) {
      std::fprintf(stderr, "generator failed: %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(engine.AddGraph(*graph));
  }
  const auto hot_again = nb::GenerateErdosRenyi(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 101});
  engine.AddGraph(*hot_again);  // dedup: no second resident copy

  // Deterministic trace. Graph popularity is skewed 4:1:1 toward the hot
  // network; methods and kinds cycle.
  const std::vector<nb::Method> methods = {
      nb::Method::kNoiseCorrected, nb::Method::kDisparityFilter,
      nb::Method::kNaiveThreshold, nb::Method::kMaximumSpanningTree};
  std::vector<nb::BackboneRequest> trace;
  trace.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    nb::BackboneRequest request;
    request.graph = graphs[static_cast<size_t>(i % 6 < 4 ? 0 : 1 + i % 2)];
    request.method = methods[static_cast<size_t>(i) % methods.size()];
    request.share = 0.05 + 0.9 * static_cast<double>(i % 17) / 17.0;
    switch (i % 4) {
      case 0:
        request.kind = nb::RequestKind::kTopShare;
        break;
      case 1:
        request.kind = nb::RequestKind::kCoveragePoint;
        break;
      case 2:
        request.kind = nb::RequestKind::kTopK;
        request.k = 50 + i;
        break;
      default:
        request.kind = nb::RequestKind::kSweep;
        request.shares = {0.1, 0.25, 0.5, 0.75, 1.0};
        break;
    }
    if (chaos) {
      request.timeout = std::chrono::milliseconds(250);
      request.allow_degraded = true;
    }
    trace.push_back(std::move(request));
  }

  // Replay through the async pipeline in batches of 32.
  std::printf("replaying %d requests over %lld resident graphs...\n",
              num_requests,
              static_cast<long long>(engine.stats().total.graphs.graphs));
  nb::Timer timer;
  std::vector<std::future<std::vector<nb::Result<nb::BackboneResponse>>>>
      futures;
  for (size_t begin = 0; begin < trace.size(); begin += 32) {
    if (g_terminate != 0) {
      std::printf("SIGTERM: draining after %zu submitted requests\n",
                  begin);
      break;
    }
    const size_t end = std::min(begin + 32, trace.size());
    futures.push_back(engine.Submit(std::vector<nb::BackboneRequest>(
        trace.begin() + static_cast<ptrdiff_t>(begin),
        trace.begin() + static_cast<ptrdiff_t>(end))));
  }
  int64_t ok_count = 0, failed = 0, degraded = 0, untyped = 0;
  for (auto& future : futures) {
    for (const auto& result : future.get()) {
      if (result.ok()) {
        ++ok_count;
        if (result->degraded) ++degraded;
      } else {
        ++failed;
        // Under chaos every failure must be typed: overload, deadline,
        // cancellation, or a retried-out transient.
        const nb::Status& status = result.status();
        if (!status.IsUnavailable() && !status.IsResourceExhausted() &&
            !status.IsDeadlineExceeded() && !status.IsCancelled()) {
          ++untyped;
          std::fprintf(stderr, "untyped failure: %s\n",
                       status.ToString().c_str());
        }
      }
    }
  }
  const double elapsed = timer.ElapsedSeconds();

  const nb::ShardedBackboneEngine::Stats sharded_stats = engine.stats();
  const nb::BackboneEngine::Stats& stats = sharded_stats.total;
  if (num_shards > 1) {
    std::printf("\n%-28s %12lld\n", "routing epoch",
                static_cast<long long>(sharded_stats.routing_epoch));
    std::printf("%-28s %12lld\n", "routing overrides",
                static_cast<long long>(sharded_stats.routing_overrides));
    std::printf("%-28s %12lld\n", "families migrated",
                static_cast<long long>(sharded_stats.migrations));
    for (size_t s = 0; s < sharded_stats.shards.size(); ++s) {
      std::printf("shard %-22zu %12lld requests\n", s,
                  static_cast<long long>(sharded_stats.shards[s].requests));
    }
  }
  std::printf("\n%-28s %12lld\n", "requests ok / failed",
              static_cast<long long>(ok_count));
  std::printf("%-28s %12lld\n", "  failed",
              static_cast<long long>(failed));
  std::printf("%-28s %12.1f\n", "requests / second",
              static_cast<double>(ok_count + failed) / elapsed);
  std::printf("%-28s %12lld\n", "methods scored (cold)",
              static_cast<long long>(stats.scores_computed));
  std::printf("%-28s %12lld\n", "cache hits",
              static_cast<long long>(stats.cache.hits));
  std::printf("%-28s %12lld\n", "cache misses",
              static_cast<long long>(stats.cache.misses));
  std::printf("%-28s %12.4f\n", "hit rate",
              static_cast<double>(stats.cache.hits) /
                  static_cast<double>(stats.cache.hits +
                                      stats.cache.misses));
  std::printf("%-28s %12lld\n", "cache evictions",
              static_cast<long long>(stats.cache.evictions));
  std::printf("%-28s %12.2f\n", "cache MB",
              static_cast<double>(stats.cache.bytes) / (1 << 20));
  std::printf("%-28s %12lld\n", "resident graphs",
              static_cast<long long>(stats.graphs.graphs));
  std::printf("%-28s %12lld\n", "graph dedup hits",
              static_cast<long long>(stats.graphs.dedup_hits));
  std::printf("%-28s %12.2f\n", "resident graph MB",
              static_cast<double>(stats.graphs.resident_bytes) / (1 << 20));
  if (!snapshot_dir.empty()) {
    // Snapshot the drained state explicitly (a SIGTERM drain wants the
    // state on disk even if the destructor's shutdown snapshot is then a
    // no-op re-write) and report durability counters.
    const nb::Status written = engine.WriteSnapshotNow();
    if (!written.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   written.ToString().c_str());
    }
    const nb::BackboneEngine::Stats snap = engine.stats().total;
    std::printf("%-28s %12lld\n", "snapshot writes",
                static_cast<long long>(snap.snapshot_writes));
    std::printf("%-28s %12lld\n", "snapshot write failures",
                static_cast<long long>(snap.snapshot_failures));
  }
  // Final observability summary: stop the monitor first so its dumps
  // cannot interleave, then render one merged snapshot. The same
  // snapshot drives the chaos per-site report below — injected-vs-drawn
  // counts come from the registry's fault gauges, the same source of
  // truth every other dump reads, not from a private injector pointer.
  monitor.reset();
  const nb::obs::MetricsSnapshot metrics = MergedMetrics(engine);
  std::printf("\n--- final metrics ---\n%s", metrics.RenderText().c_str());
  if (!metrics_json.empty()) {
    if (metrics.WriteJsonFile(metrics_json, "netbone_serve")) {
      std::printf("metrics json: %s\n", metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics json: %s\n",
                   metrics_json.c_str());
    }
  }
  if (trace_sample > 0) {
    // Each shard samples into its own ring; the demo prints shard 0's
    // span chains (with --shards=1 that is every trace).
    const nb::obs::TraceRecorder& tracer = engine.shard(0).tracer();
    const auto traces = tracer.Snapshot();
    std::printf("\ntraces: %lld sampled, %lld dropped; last %zu:\n",
                static_cast<long long>(tracer.sampled()),
                static_cast<long long>(tracer.dropped()),
                std::min<size_t>(traces.size(), 3));
    for (size_t t = traces.size() - std::min<size_t>(traces.size(), 3);
         t < traces.size(); ++t) {
      const nb::obs::RequestTrace& trace = traces[t];
      std::printf("  #%llu %s/%s path=%s total=%lldus spans:",
                  static_cast<unsigned long long>(trace.request_id),
                  trace.method, trace.kind,
                  nb::obs::AnswerPathName(trace.path),
                  static_cast<long long>(trace.total_ns / 1000));
      for (int s = 0; s < trace.num_spans; ++s) {
        std::printf(" %s=%lldus",
                    nb::obs::SpanKindName(trace.spans[s].kind),
                    static_cast<long long>(
                        trace.spans[s].duration_ns / 1000));
      }
      std::printf("\n");
    }
  }
  if (chaos) {
    std::printf("\n%-28s %12lld\n", "degraded responses",
                static_cast<long long>(degraded));
    std::printf("%-28s %12lld\n", "retries",
                static_cast<long long>(stats.retries));
    std::printf("%-28s %12lld\n", "deadline hits",
                static_cast<long long>(stats.deadline_hits));
    std::printf("%-28s %12lld\n", "shed batches",
                static_cast<long long>(stats.shed_batches));
    std::printf("%-28s %12lld\n", "cache insert drops",
                static_cast<long long>(stats.cache.insert_failures));
    std::printf("%-28s %12lld\n", "background refreshes",
                static_cast<long long>(stats.background_refreshes));
    for (int s = 0; s < nb::kNumFaultSites; ++s) {
      const auto site = static_cast<nb::FaultSite>(s);
      const std::string base =
          std::string("fault.") + nb::FaultSiteName(site);
      std::printf("fault %-22s %6lld / %-6lld injected/draws\n",
                  nb::FaultSiteName(site),
                  static_cast<long long>(metrics.ValueOf(base + ".injected")),
                  static_cast<long long>(metrics.ValueOf(base + ".draws")));
    }
    // Chaos succeeds as long as nothing crashed, wedged, or failed with
    // an untyped status; injected failures are the point.
    return untyped == 0 ? 0 : 1;
  }
  return failed == 0 ? 0 : 1;
}
