// Quickstart: extract a Noise-Corrected backbone from an edge list.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart [edges.tsv]
//
// Without an argument, a small synthetic dense network is generated so
// the example runs out of the box. With a path, reads a tab-separated
// edge list with header "src  trg  nij" (the same format the author's
// Python `backboning` module uses).

#include <cstdio>
#include <string>

#include "core/filter.h"
#include "core/noise_corrected.h"
#include "gen/planted_partition.h"
#include "graph/io.h"

namespace nb = netbone;

int main(int argc, char** argv) {
  // 1. Load (or synthesize) a weighted network.
  nb::Graph graph;
  if (argc > 1) {
    nb::EdgeListReadOptions options;
    options.directedness = nb::Directedness::kUndirected;
    auto loaded = nb::ReadEdgeListCsv(argv[1], options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    // A noisy community graph: 150 nodes, nearly every pair connected,
    // but intra-community pairs are systematically heavier (the paper's
    // Fig. 1 scenario).
    auto planted = nb::GeneratePlantedPartition({});
    if (!planted.ok()) return 1;
    graph = std::move(planted->graph);
  }
  std::printf("input: %d nodes, %lld edges (density %.1f%%)\n",
              graph.num_nodes(),
              static_cast<long long>(graph.num_edges()),
              200.0 * static_cast<double>(graph.num_edges()) /
                  (static_cast<double>(graph.num_nodes()) *
                   (graph.num_nodes() - 1)));

  // 2. Score every edge with the Noise-Corrected model (Coscia & Neffke,
  //    ICDE 2017): transformed lift + posterior standard deviation.
  auto scored = nb::NoiseCorrected(graph);
  if (!scored.ok()) {
    std::fprintf(stderr, "scoring failed: %s\n",
                 scored.status().ToString().c_str());
    return 1;
  }

  // 3. Threshold. delta is the only parameter: keep an edge iff its
  //    transformed lift exceeds zero by delta posterior standard
  //    deviations (1.28 / 1.64 / 2.32 ~ p = 0.1 / 0.05 / 0.01).
  for (const double delta : {1.28, 1.64, 2.32}) {
    const nb::BackboneMask mask = nb::FilterByDelta(*scored, delta);
    std::printf("delta = %.2f: backbone keeps %lld edges (%.1f%%)\n",
                delta, static_cast<long long>(mask.kept),
                100.0 * mask.Share());
  }

  // 4. Materialize one backbone as a Graph and write it out.
  const nb::BackboneMask mask = nb::FilterByDelta(*scored, 1.64);
  auto backbone = nb::ApplyMask(graph, mask);
  if (!backbone.ok()) return 1;
  const std::string out_path = "backbone.tsv";
  if (nb::WriteEdgeListCsv(*backbone, out_path).ok()) {
    std::printf("wrote %s (%lld edges, %d nodes still connected)\n",
                out_path.c_str(),
                static_cast<long long>(backbone->num_edges()),
                static_cast<int>(backbone->num_nodes() -
                                 backbone->CountIsolates()));
  }
  return 0;
}
