// Country-network walkthrough: the paper's full evaluation pipeline on
// one synthetic country trade network.
//
//   1. generate a dense, noisy trade network observed in two years;
//   2. score it with all backboning methods;
//   3. compare them on the paper's three criteria — Coverage (topology),
//      Quality (R² ratio of a gravity regression), Stability (Spearman
//      across years) — at a matched edge budget.
//
// Run: ./build/examples/country_networks [num_countries]

#include <cstdio>
#include <cstdlib>

#include "core/registry.h"
#include "eval/coverage.h"
#include "eval/edge_budget.h"
#include "eval/quality.h"
#include "eval/stability.h"
#include "gen/countries.h"

namespace nb = netbone;

int main(int argc, char** argv) {
  const int32_t num_countries =
      argc > 1 ? std::atoi(argv[1]) : 120;

  auto suite = nb::GenerateCountrySuite(/*seed=*/7, /*num_years=*/2,
                                        num_countries);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  const nb::TemporalNetwork& trade =
      suite->network(nb::CountryNetworkKind::kTrade);
  const nb::Graph& year0 = trade.snapshot(0);
  std::printf("Trade network: %d countries, %lld weighted pairs, two "
              "yearly observations\n",
              year0.num_nodes(), static_cast<long long>(year0.num_edges()));

  // Gravity-model predictors (log distance, log populations, business
  // travel) for the Quality regression.
  auto predictors =
      nb::CountryPredictors(*suite, nb::CountryNetworkKind::kTrade, year0);
  if (!predictors.ok()) return 1;
  std::printf("predictors:");
  for (const auto& name : predictors->names) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // Budget: HSS backbone size at a low salience threshold, as in the
  // paper's Table II protocol.
  const auto budget = nb::HssEdgeBudget(year0);
  if (!budget.ok()) return 1;
  std::printf("matched edge budget: %lld edges\n\n",
              static_cast<long long>(*budget));

  std::printf("%-26s%10s%10s%10s\n", "method", "coverage", "quality",
              "stability");
  for (const nb::Method method : nb::PaperMethods()) {
    const int64_t edge_budget = nb::IsParameterFree(method) ? 0 : *budget;
    const auto mask = nb::BudgetedBackbone(method, year0, edge_budget);
    if (!mask.ok()) {
      std::printf("%-26s%10s%10s%10s   (%s)\n",
                  nb::MethodName(method).c_str(), "n/a", "n/a", "n/a",
                  mask.status().message().c_str());
      continue;
    }
    const auto coverage = nb::CoverageOfMask(year0, *mask);
    const auto quality =
        nb::QualityRatio(year0, predictors->columns, *mask);
    const auto stability =
        nb::Stability(trade.snapshot(0), trade.snapshot(1), *mask);
    std::printf("%-26s%10.3f%10.3f%10.3f\n",
                nb::MethodName(method).c_str(),
                coverage.ok() ? *coverage : -1.0,
                quality.ok() ? quality->ratio : -1.0,
                stability.ok() ? *stability : -1.0);
  }

  std::printf(
      "\nReading the table: quality > 1 means the backbone edges are more\n"
      "predictable from gravity fundamentals than the full noisy network;\n"
      "the Noise-Corrected backbone should lead that column.\n");
  return 0;
}
