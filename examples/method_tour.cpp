// Method tour: run every backboning method on one noisy network and show
// how differently they rank the same edges.
//
//   1. build a noisy planted-partition network (dense hairball with five
//      hidden communities, the paper's Fig. 1 scenario);
//   2. score it with all seven methods (the paper's six + k-core);
//   3. extract equal-size backbones and compare: edges kept in common,
//      node coverage, and how well Louvain communities on each backbone
//      recover the planted blocks (NMI).
//
// Run: ./build/examples/method_tour

#include <cstdio>
#include <vector>

#include "community/louvain.h"
#include "community/nmi.h"
#include "core/filter.h"
#include "core/registry.h"
#include "eval/coverage.h"
#include "eval/recovery.h"
#include "gen/planted_partition.h"

namespace nb = netbone;

int main() {
  // Communities exist, but almost every pair carries some weight: only
  // the weight *pattern* reveals the blocks.
  nb::PlantedPartitionOptions options;
  options.num_nodes = 150;
  options.num_blocks = 5;
  options.p_in = 0.8;
  options.mean_weight_in = 9.0;
  options.p_out = 1.0;
  options.mean_weight_out = 6.0;
  options.seed = 11;
  const auto planted = nb::GeneratePlantedPartition(options);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.status().ToString().c_str());
    return 1;
  }
  const nb::Graph& graph = planted->graph;
  const nb::Partition truth(planted->block);
  std::printf("hairball: %d nodes, %lld edges, %d planted communities\n\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              truth.num_communities());

  // Baseline: communities found on the unfiltered hairball.
  {
    const auto louvain = nb::Louvain(graph, {.seed = 3});
    const auto nmi = louvain.ok()
                         ? nb::NormalizedMutualInformation(*louvain, truth)
                         : nb::Result<double>(louvain.status());
    std::printf("%-24s %8s %8s   NMI(Louvain, truth) = %.3f\n",
                "unfiltered network", "-", "-", nmi.ok() ? *nmi : -1.0);
  }

  const int64_t budget = graph.num_edges() / 10;
  // NC's mask first, so every row can report its edge overlap with NC.
  std::vector<bool> nc_mask;
  {
    const auto nc = nb::RunMethod(nb::Method::kNoiseCorrected, graph);
    if (nc.ok()) nc_mask = nb::TopK(*nc, budget).keep;
  }
  for (const nb::Method method : nb::AllMethods()) {
    const auto scored = nb::RunMethod(method, graph);
    if (!scored.ok()) {
      std::printf("%-24s n/a (%s)\n", nb::MethodName(method).c_str(),
                  scored.status().message().c_str());
      continue;
    }
    const nb::BackboneMask mask = nb::TopK(*scored, budget);
    const auto backbone = nb::ApplyMask(graph, mask);
    if (!backbone.ok()) continue;
    const auto coverage = nb::Coverage(graph, *backbone);
    const auto louvain = nb::Louvain(*backbone, {.seed = 3});
    const auto nmi = louvain.ok()
                         ? nb::NormalizedMutualInformation(*louvain, truth)
                         : nb::Result<double>(louvain.status());

    std::string overlap = "-";
    if (!nc_mask.empty()) {
      const auto jaccard = nb::JaccardRecovery(mask.keep, nc_mask);
      if (jaccard.ok()) {
        char buffer[16];
        std::snprintf(buffer, sizeof(buffer), "%.2f", *jaccard);
        overlap = buffer;
      }
    }
    std::printf(
        "%-24s %8lld %8.3f   NMI(Louvain, truth) = %.3f   overlap(NC) = "
        "%s\n",
        nb::MethodName(method).c_str(),
        static_cast<long long>(mask.kept),
        coverage.ok() ? *coverage : -1.0, nmi.ok() ? *nmi : -1.0,
        overlap.c_str());
  }

  std::printf(
      "\nThe point of Fig. 1: on the raw hairball the community structure\n"
      "is nearly invisible (NMI ~0.35); every backbone improves on it, and\n"
      "the methods disagree substantially about WHICH tenth of the edges\n"
      "carries the structure (see the overlap column).\n");
  return 0;
}
