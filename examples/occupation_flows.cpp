// Occupation-flow case study (paper Sec. VI): predict inter-occupational
// job switches from a skill co-occurrence network, before and after
// backboning.
//
//   1. generate O*NET-style occupation/skill scores and CPS-style labor
//      flows;
//   2. build the skill co-occurrence network (shared above-average
//      skills);
//   3. extract NC and DF backbones at the same edge budget;
//   4. compare community structure (map-equation compression, modularity
//      against the two-digit occupation classes) and the flow-prediction
//      correlation of the model F_ij = b1 C_ij + b2 S_i. + b3 S_.j.
//
// Run: ./build/examples/occupation_flows

#include <cstdio>
#include <vector>

#include "community/map_equation.h"
#include "community/modularity.h"
#include "community/nmi.h"
#include "core/filter.h"
#include "core/registry.h"
#include "gen/occupations.h"

namespace nb = netbone;

namespace {

// Flow-edge mask induced by a co-occurrence backbone mask.
std::vector<bool> FlowMaskFromBackbone(const nb::OccupationWorld& world,
                                       const nb::BackboneMask& co_mask) {
  std::vector<bool> mask(
      static_cast<size_t>(world.flows.num_edges()), false);
  for (nb::EdgeId id = 0; id < world.flows.num_edges(); ++id) {
    const nb::Edge& e = world.flows.edge(id);
    const nb::EdgeId co_id = world.co_occurrence.FindEdge(e.src, e.dst);
    if (co_id >= 0 && co_mask.keep[static_cast<size_t>(co_id)]) {
      mask[static_cast<size_t>(id)] = true;
    }
  }
  return mask;
}

}  // namespace

int main() {
  nb::OccupationWorldOptions options;
  options.num_occupations = 300;
  options.num_skills = 150;
  options.seed = 2026;
  const auto world = nb::GenerateOccupationWorld(options);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "occupations: %d in %d major classes; co-occurrence pairs: %lld; "
      "flow pairs: %lld\n\n",
      options.num_occupations, options.num_classes,
      static_cast<long long>(world->co_occurrence.num_edges()),
      static_cast<long long>(world->flows.num_edges()));

  const nb::Partition classes(world->minor_group);
  const int64_t budget = options.num_occupations * 8;

  const auto all_pairs =
      nb::FlowPredictionCorrelation(*world, std::vector<bool>());
  std::printf("flow prediction correlation, all pairs: %.3f\n\n",
              all_pairs.ok() ? *all_pairs : -1.0);

  for (const nb::Method method :
       {nb::Method::kDisparityFilter, nb::Method::kNoiseCorrected}) {
    const auto scored = nb::RunMethod(method, world->co_occurrence);
    if (!scored.ok()) continue;
    const nb::BackboneMask mask = nb::TopK(*scored, budget);
    const auto backbone = nb::ApplyMask(world->co_occurrence, mask);
    if (!backbone.ok()) continue;

    const auto one_level = nb::OneLevelCodelength(*backbone);
    const auto communities = nb::GreedyInfomap(*backbone, {.seed = 5});
    const auto two_level =
        communities.ok()
            ? nb::MapEquationCodelength(*backbone, *communities)
            : nb::Result<double>(communities.status());
    const auto modularity = nb::Modularity(*backbone, classes);
    const auto nmi = communities.ok()
                         ? nb::NormalizedMutualInformation(*communities,
                                                           classes)
                         : nb::Result<double>(communities.status());
    const auto flow_corr = nb::FlowPredictionCorrelation(
        *world, FlowMaskFromBackbone(*world, mask));

    std::printf("== %s backbone (%lld edges) ==\n",
                nb::MethodName(method).c_str(),
                static_cast<long long>(mask.kept));
    std::printf("  occupations still connected: %d of %d\n",
                static_cast<int>(backbone->num_nodes() -
                                 backbone->CountIsolates()),
                backbone->num_nodes());
    if (one_level.ok() && two_level.ok()) {
      std::printf("  map equation: %.2f bits -> %.2f bits (%.1f%% gain)\n",
                  *one_level, *two_level,
                  100.0 * (1.0 - *two_level / *one_level));
    }
    if (modularity.ok()) {
      std::printf("  modularity of the 2-digit classification: %.3f\n",
                  *modularity);
    }
    if (nmi.ok()) {
      std::printf("  NMI(communities, 2-digit classes): %.3f\n", *nmi);
    }
    if (flow_corr.ok()) {
      std::printf("  flow prediction correlation on kept pairs: %.3f\n",
                  *flow_corr);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected (paper Sec. VI): the NC backbone compresses better, aligns\n"
      "better with the expert classification, and its pairs are the ones\n"
      "whose labor flows the skill model predicts best.\n");
  return 0;
}
