// Tests for the thresholding stage: score filters, the NC delta rule,
// exact edge budgets (TopK), share sweeps, grow-until-connected, and mask
// materialization.

#include "core/filter.h"

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/noise_corrected.h"
#include "graph/builder.h"
#include "graph/components.h"

namespace netbone {
namespace {

Graph MakeWeightedPath() {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 3.0);
  builder.AddEdge(3, 4, 4.0);
  builder.AddEdge(4, 5, 5.0);
  return *builder.Build();
}

TEST(FilterTest, FilterByScoreIsStrict) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  EXPECT_EQ(FilterByScore(*nt, 0.0).kept, 5);
  EXPECT_EQ(FilterByScore(*nt, 3.0).kept, 2);  // strictly greater
  EXPECT_EQ(FilterByScore(*nt, 5.0).kept, 0);
}

TEST(FilterTest, TopKExactCount) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  for (int64_t k = 0; k <= 7; ++k) {
    const BackboneMask mask = TopK(*nt, k);
    EXPECT_EQ(mask.kept, std::min<int64_t>(k, 5)) << "k=" << k;
  }
}

TEST(FilterTest, TopKKeepsHighestScores) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask mask = TopK(*nt, 2);
  EXPECT_TRUE(mask.keep[static_cast<size_t>(g.FindEdge(4, 5))]);
  EXPECT_TRUE(mask.keep[static_cast<size_t>(g.FindEdge(3, 4))]);
  EXPECT_FALSE(mask.keep[static_cast<size_t>(g.FindEdge(0, 1))]);
}

TEST(FilterTest, TopKTieBreakIsDeterministic) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 2.0);
  const Graph g = *builder.Build();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask a = TopK(*nt, 2);
  const BackboneMask b = TopK(*nt, 2);
  EXPECT_EQ(a.keep, b.keep);
  EXPECT_EQ(a.kept, 2);
  // Ties break toward the lower edge id.
  EXPECT_TRUE(a.keep[0]);
  EXPECT_TRUE(a.keep[1]);
  EXPECT_FALSE(a.keep[2]);
}

TEST(FilterTest, TopShareRounds) {
  const Graph g = MakeWeightedPath();  // 5 edges
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  EXPECT_EQ(TopShare(*nt, 1.0).kept, 5);
  EXPECT_EQ(TopShare(*nt, 0.4).kept, 2);
  EXPECT_EQ(TopShare(*nt, 0.5).kept, 3);  // llround(2.5) = 3
  EXPECT_EQ(TopShare(*nt, 0.0).kept, 0);
  EXPECT_DOUBLE_EQ(TopShare(*nt, 0.4).Share(), 0.4);
}

TEST(FilterTest, GrowUntilConnectedStopsAtSpanningSet) {
  // Weights descend along a path, so growth must add every edge before the
  // graph connects.
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask mask = GrowUntilConnected(*nt);
  EXPECT_EQ(mask.kept, 5);
}

TEST(FilterTest, GrowUntilConnectedSkipsRedundantTail) {
  // Clique where a spanning set arrives early: growth stops before adding
  // every edge.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(0, 2, 9.0);
  builder.AddEdge(0, 3, 8.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(1, 3, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph g = *builder.Build();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask mask = GrowUntilConnected(*nt);
  EXPECT_EQ(mask.kept, 3);
  const auto backbone = ApplyMask(g, mask);
  ASSERT_TRUE(backbone.ok());
  EXPECT_TRUE(IsConnected(*backbone));
}

TEST(FilterTest, GrowUntilConnectedIgnoresPreexistingIsolates) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 1.0);
  builder.ReserveNodes(5);  // nodes 3 and 4 are isolates in the original
  const Graph g = *builder.Build();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask mask = GrowUntilConnected(*nt);
  EXPECT_EQ(mask.kept, 2);  // covers nodes 0, 1, 2 — isolates exempt
}

TEST(FilterTest, ApplyMaskPreservesNodeUniverse) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const auto backbone = ApplyMask(g, TopK(*nt, 2));
  ASSERT_TRUE(backbone.ok());
  EXPECT_EQ(backbone->num_nodes(), g.num_nodes());
  EXPECT_EQ(backbone->num_edges(), 2);
  // Kept edges are 3-4 and 4-5, so nodes 0, 1 and 2 all drop out.
  EXPECT_EQ(backbone->CountIsolates(), 3);
}

TEST(FilterTest, MaskToEdgeIdsRoundTrip) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask mask = TopK(*nt, 3);
  const auto ids = MaskToEdgeIds(mask);
  EXPECT_EQ(static_cast<int64_t>(ids.size()), mask.kept);
  for (const EdgeId id : ids) {
    EXPECT_TRUE(mask.keep[static_cast<size_t>(id)]);
  }
}

TEST(FilterTest, DeltaRuleUsesSdev) {
  // Two synthetic edges with equal scores but different sdev: the noisy
  // one is dropped first as delta grows.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(0, 2, 10.0);
  builder.AddEdge(1, 2, 4.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph g = *builder.Build();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  // Sweep delta until everything is gone; kept count must be monotone and
  // each surviving edge must satisfy the rule exactly.
  int64_t prev = g.num_edges() + 1;
  for (double delta = 0.0; delta < 50.0; delta += 0.5) {
    const BackboneMask mask = FilterByDelta(*nc, delta);
    EXPECT_LE(mask.kept, prev);
    prev = mask.kept;
    for (EdgeId id = 0; id < g.num_edges(); ++id) {
      const bool expected =
          nc->at(id).score - delta * nc->at(id).sdev > 0.0;
      EXPECT_EQ(mask.keep[static_cast<size_t>(id)], expected);
    }
  }
}

TEST(FilterTest, ScoreValuesExtraction) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const auto values = nt->ScoreValues();
  ASSERT_EQ(values.size(), 5u);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_DOUBLE_EQ(values[static_cast<size_t>(id)], g.edge(id).weight);
  }
}

}  // namespace
}  // namespace netbone
