// Tests for the OLS engine behind the paper's Quality criterion.

#include "stats/ols.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace netbone {
namespace {

TEST(OlsTest, ExactLineFit) {
  // y = 3 + 2x fits exactly: R^2 = 1.
  OlsFitter fitter;
  fitter.AddColumn("x", {1.0, 2.0, 3.0, 4.0});
  const auto fit = fitter.Fit(std::vector<double>{5.0, 7.0, 9.0, 11.0});
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->coefficients.size(), 2u);
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-8);  // intercept
  EXPECT_NEAR(fit->coefficients[1], 2.0, 1e-8);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(OlsTest, TwoRegressorRecovery) {
  // y = 1 + 2a - 3b with noiseless data.
  std::vector<double> a, b, y;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double av = rng.Uniform(-2.0, 2.0);
    const double bv = rng.Uniform(-1.0, 3.0);
    a.push_back(av);
    b.push_back(bv);
    y.push_back(1.0 + 2.0 * av - 3.0 * bv);
  }
  OlsFitter fitter;
  fitter.AddColumn("a", a);
  fitter.AddColumn("b", b);
  const auto fit = fitter.Fit(y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 1.0, 1e-7);
  EXPECT_NEAR(fit->coefficients[1], 2.0, 1e-7);
  EXPECT_NEAR(fit->coefficients[2], -3.0, 1e-7);
}

TEST(OlsTest, RSquaredMatchesDefinition) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xv = rng.Uniform(0.0, 10.0);
    x.push_back(xv);
    y.push_back(2.0 * xv + rng.Gaussian(0.0, 3.0));
  }
  OlsFitter fitter;
  fitter.AddColumn("x", x);
  const auto fit = fitter.Fit(y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->r_squared, 1.0 - fit->rss / fit->tss, 1e-12);
  EXPECT_GT(fit->r_squared, 0.5);
  EXPECT_LT(fit->r_squared, 1.0);
  EXPECT_LT(fit->adjusted_r_squared, fit->r_squared);
}

TEST(OlsTest, InterceptOnlyModelPredictsMean) {
  OlsOptions options;
  OlsFitter fitter(options);
  // No regressor columns: intercept-only via add_intercept.
  const std::vector<double> y = {1.0, 2.0, 3.0, 6.0};
  const auto fit = fitter.Fit(y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-10);
  EXPECT_NEAR(fit->r_squared, 0.0, 1e-12);
}

TEST(OlsTest, NoInterceptOption) {
  OlsOptions options;
  options.add_intercept = false;
  OlsFitter fitter(options);
  fitter.AddColumn("x", {1.0, 2.0, 3.0});
  const auto fit = fitter.Fit(std::vector<double>{2.0, 4.0, 6.0});
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->coefficients.size(), 1u);
  EXPECT_NEAR(fit->coefficients[0], 2.0, 1e-10);
}

TEST(OlsTest, FailsOnLengthMismatch) {
  OlsFitter fitter;
  fitter.AddColumn("x", {1.0, 2.0});
  EXPECT_FALSE(fitter.Fit(std::vector<double>{1.0, 2.0, 3.0}).ok());
}

TEST(OlsTest, FailsWithTooFewObservations) {
  OlsFitter fitter;
  fitter.AddColumn("x", {1.0, 2.0});
  // n = 2 <= k = 2 (intercept + x).
  EXPECT_FALSE(fitter.Fit(std::vector<double>{1.0, 2.0}).ok());
}

TEST(OlsTest, RidgeStabilizesCollinearColumns) {
  // Perfectly collinear columns would break a plain Cholesky; the tiny
  // ridge keeps the solve well-posed.
  OlsFitter fitter;
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> x2 = {2.0, 4.0, 6.0, 8.0, 10.0};
  fitter.AddColumn("x", x);
  fitter.AddColumn("2x", x2);
  const auto fit = fitter.Fit(std::vector<double>{3.0, 6.0, 9.0, 12.0,
                                                  15.0});
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-6);
}

TEST(OlsTest, ColumnNamesIncludeIntercept) {
  OlsFitter fitter;
  fitter.AddColumn("distance", {});
  const auto names = fitter.ColumnNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "(intercept)");
  EXPECT_EQ(names[1], "distance");
}

TEST(OlsTest, FittedValuesAreConsistent) {
  OlsFitter fitter;
  fitter.AddColumn("x", {1.0, 2.0, 3.0, 4.0});
  const std::vector<double> y = {1.1, 2.2, 2.8, 4.1};
  const auto fit = fitter.Fit(y);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->fitted.size(), 4u);
  double rss = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    rss += (y[i] - fit->fitted[i]) * (y[i] - fit->fitted[i]);
  }
  EXPECT_NEAR(rss, fit->rss, 1e-12);
}

TEST(OlsRSquaredTest, ConvenienceWrapperAgreesWithFitter) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 60; ++i) {
    const double xv = rng.Uniform(0.0, 1.0);
    x.push_back(xv);
    y.push_back(5.0 * xv + rng.Gaussian(0.0, 0.5));
  }
  const auto wrapped = OlsRSquared({x}, y);
  OlsFitter fitter;
  fitter.AddColumn("x", x);
  const auto fit = fitter.Fit(y);
  ASSERT_TRUE(wrapped.ok());
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(*wrapped, fit->r_squared);
}

}  // namespace
}  // namespace netbone
