// Tests for adjacency indexing, union-find, connected components,
// shortest paths, and structural transforms.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/paths.h"
#include "graph/transform.h"
#include "graph/union_find.h"

namespace netbone {
namespace {

TEST(AdjacencyTest, UndirectedArcsAppearBothWays) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 3.0);
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  EXPECT_EQ(adj.out_arcs(0).size(), 1u);
  EXPECT_EQ(adj.out_arcs(1).size(), 2u);
  EXPECT_EQ(adj.out_arcs(2).size(), 1u);
  EXPECT_EQ(adj.out_arcs(0)[0].neighbor, 1);
  EXPECT_DOUBLE_EQ(adj.out_arcs(0)[0].weight, 2.0);
}

TEST(AdjacencyTest, DirectedSeparatesInAndOut) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 1, 1.0);
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  EXPECT_EQ(adj.out_arcs(1).size(), 0u);
  EXPECT_EQ(adj.in_arcs(1).size(), 2u);
  EXPECT_EQ(adj.out_arcs(0).size(), 1u);
}

TEST(AdjacencyTest, ArcEdgeIdsPointIntoEdgeTable) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(0, 2, 5.0);
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& arc : adj.out_arcs(v)) {
      const Edge& e = g.edge(arc.edge);
      EXPECT_TRUE((e.src == v && e.dst == arc.neighbor) ||
                  (e.dst == v && e.src == arc.neighbor));
      EXPECT_DOUBLE_EQ(e.weight, arc.weight);
    }
  }
}

TEST(UnionFindTest, BasicMergeSemantics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_TRUE(uf.Union(0, 3));
  EXPECT_EQ(uf.num_sets(), 2);
  EXPECT_TRUE(uf.Connected(1, 2));
  EXPECT_FALSE(uf.Connected(1, 4));
  EXPECT_EQ(uf.SetSize(3), 4);
  EXPECT_EQ(uf.SetSize(4), 1);
}

TEST(ComponentsTest, CountsAndGiantSize) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(3, 4, 1.0);
  builder.ReserveNodes(6);  // node 5 is an isolate
  const Graph g = *builder.Build();
  const Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.giant_size, 3);
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_NE(c.component[0], c.component[3]);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, DirectedUsesWeakConnectivity) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 1, 1.0);  // 0->1<-2 weakly connected
  const Graph g = *builder.Build();
  EXPECT_TRUE(IsConnected(g));
}

TEST(DijkstraTest, ReciprocalWeightPrefersStrongEdges) {
  // 0-1-2 strong detour vs weak direct 0-2 (HSS length convention).
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(1, 2, 10.0);
  builder.AddEdge(0, 2, 1.0);
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  const ShortestPathTree tree = Dijkstra(adj, 0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 0.2);  // via node 1
  EXPECT_EQ(tree.parent[2], 1);
}

TEST(DijkstraTest, WeightLengthRuleUsesRawWeights) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(1, 2, 10.0);
  builder.AddEdge(0, 2, 1.0);
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  DijkstraOptions options;
  options.length_rule = DijkstraOptions::LengthRule::kWeight;
  const ShortestPathTree tree = Dijkstra(adj, 0, options);
  EXPECT_DOUBLE_EQ(tree.distance[2], 1.0);  // direct edge now shortest
  EXPECT_EQ(tree.parent[2], 0);
}

TEST(DijkstraTest, UnreachableNodesHaveInfiniteDistance) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(2, 0, 1.0);  // 2 unreachable FROM 0
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  const ShortestPathTree tree = Dijkstra(adj, 0);
  EXPECT_TRUE(std::isinf(tree.distance[2]));
  EXPECT_EQ(tree.parent_edge[2], -1);
}

TEST(BfsTest, UnitDistances) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 5.0);
  builder.AddEdge(1, 2, 0.1);
  builder.ReserveNodes(4);
  const Graph g = *builder.Build();
  const Adjacency adj(g);
  const auto dist = BfsDistances(adj, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
}

TEST(TransformTest, SymmetrizeSumsDirections) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(1, 0, 4.0);
  builder.AddEdge(1, 2, 5.0);
  const Graph g = *builder.Build();
  const auto sym = Symmetrize(g, SymmetrizeRule::kSum);
  ASSERT_TRUE(sym.ok());
  EXPECT_FALSE(sym->directed());
  EXPECT_DOUBLE_EQ(sym->WeightOf(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(sym->WeightOf(1, 2), 5.0);
}

TEST(TransformTest, SymmetrizeMaxAndAvg) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(1, 0, 4.0);
  const Graph g = *builder.Build();
  const auto mx = Symmetrize(g, SymmetrizeRule::kMax);
  const auto avg = Symmetrize(g, SymmetrizeRule::kAvg);
  ASSERT_TRUE(mx.ok());
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(mx->WeightOf(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(avg->WeightOf(0, 1), 3.5);
}

TEST(TransformTest, ReverseFlipsDirections) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 3.0);
  const Graph g = *builder.Build();
  const auto rev = Reverse(g);
  ASSERT_TRUE(rev.ok());
  EXPECT_DOUBLE_EQ(rev->WeightOf(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(rev->WeightOf(0, 1), 0.0);
}

TEST(TransformTest, ReverseRejectsUndirected) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  EXPECT_FALSE(Reverse(*builder.Build()).ok());
}

TEST(TransformTest, EdgeSubgraphKeepsNodeUniverseAndLabels) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddLabeledEdge("A", "B", 1.0);
  builder.AddLabeledEdge("B", "C", 2.0);
  builder.AddLabeledEdge("C", "A", 3.0);
  const Graph g = *builder.Build();
  const auto sub = EdgeSubgraph(g, {0});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 3);
  EXPECT_EQ(sub->num_edges(), 1);
  EXPECT_EQ(sub->LabelOf(2), "C");
  EXPECT_EQ(sub->CountIsolates(), 1);
}

TEST(TransformTest, EdgeSubgraphMaskValidatesSize) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  const Graph g = *builder.Build();
  EXPECT_FALSE(EdgeSubgraphMask(g, {true, false}).ok());
  const auto ok = EdgeSubgraphMask(g, {true});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_edges(), 1);
}

TEST(TransformTest, EdgeSubgraphRejectsBadIds) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  const Graph g = *builder.Build();
  EXPECT_FALSE(EdgeSubgraph(g, {5}).ok());
  EXPECT_FALSE(EdgeSubgraph(g, {-1}).ok());
}

}  // namespace
}  // namespace netbone
