// Tests for log-gamma, the regularized incomplete beta, the exact Binomial
// CDF (paper footnote 2), and the normal CDF/quantile used to map delta
// thresholds to p-values.

#include "stats/special_functions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace netbone {
namespace {

TEST(LogGammaTest, FactorialValues) {
  // Gamma(n) = (n-1)!.
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi); Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogGammaTest, LargeArguments) {
  // Stirling check at x = 1000.
  const double x = 1000.0;
  const double stirling = (x - 0.5) * std::log(x) - x +
                          0.5 * std::log(2.0 * M_PI) + 1.0 / (12.0 * x);
  EXPECT_NEAR(LogGamma(x), stirling, 1e-6);
}

TEST(LogBinomialCoefficientTest, SmallValues) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomialCoefficient(10, 0), 0.0, 1e-10);
  EXPECT_NEAR(LogBinomialCoefficient(10, 10), 0.0, 1e-10);
  EXPECT_TRUE(std::isinf(LogBinomialCoefficient(5, 7)));
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, ClosedFormPolynomials) {
  // I_x(1, b) = 1 - (1-x)^b; I_x(a, 1) = x^a.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 4.0, 0.3),
              1.0 - std::pow(0.7, 4), 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 1.0, 0.6), std::pow(0.6, 3),
              1e-12);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  const double a = 3.7, b = 2.2, x = 0.42;
  EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
              1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-12);
}

TEST(BinomialCdfTest, ExactSmallCases) {
  // Binomial(3, 0.5): P[X<=0]=1/8, P[X<=1]=1/2, P[X<=2]=7/8, P[X<=3]=1.
  EXPECT_NEAR(BinomialCdf(0, 3, 0.5), 0.125, 1e-12);
  EXPECT_NEAR(BinomialCdf(1, 3, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(BinomialCdf(2, 3, 0.5), 0.875, 1e-12);
  EXPECT_NEAR(BinomialCdf(3, 3, 0.5), 1.0, 1e-12);
}

TEST(BinomialCdfTest, SkewedProbability) {
  // Binomial(4, 0.2): P[X<=1] = 0.8^4 + 4*0.2*0.8^3 = 0.8192.
  EXPECT_NEAR(BinomialCdf(1, 4, 0.2), 0.8192, 1e-12);
}

TEST(BinomialCdfTest, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(BinomialCdf(2, 5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(2, 5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(-1, 5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(7, 5, 0.5), 1.0);
}

TEST(BinomialCdfTest, LargeNMatchesNormalApproximation) {
  // n=10000, p=0.3: CDF at the mean ~ 0.5 (within the continuity band).
  const double cdf = BinomialCdf(3000, 10000, 0.3);
  EXPECT_GT(cdf, 0.45);
  EXPECT_LT(cdf, 0.55);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
}

TEST(NormalCdfTest, PaperDeltaValues) {
  // Sec. IV: "common values of delta are 1.28, 1.64, and 2.32, which
  // approximate p-values of 0.1, 0.05, and 0.01".
  EXPECT_NEAR(1.0 - NormalCdf(1.28), 0.1, 0.005);
  EXPECT_NEAR(1.0 - NormalCdf(1.64), 0.05, 0.002);
  EXPECT_NEAR(1.0 - NormalCdf(2.32), 0.01, 0.001);
}

TEST(NormalQuantileTest, RoundTripsThroughCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99,
                         0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(NormalQuantileTest, SymmetryAroundMedian) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.3), -NormalQuantile(0.7), 1e-9);
}

// Property sweep: Binomial CDF must be monotone in k and match the
// summed probability mass function for small n.
class BinomialCdfSweep : public ::testing::TestWithParam<double> {};

TEST_P(BinomialCdfSweep, MatchesSummedPmf) {
  const double p = GetParam();
  const int n = 12;
  double cumulative = 0.0;
  for (int k = 0; k <= n; ++k) {
    cumulative += std::exp(LogBinomialCoefficient(n, k)) * std::pow(p, k) *
                  std::pow(1.0 - p, n - k);
    EXPECT_NEAR(BinomialCdf(k, n, p), cumulative, 1e-10)
        << "k=" << k << " p=" << p;
  }
}

TEST_P(BinomialCdfSweep, MonotoneInK) {
  const double p = GetParam();
  double previous = -1.0;
  for (int k = 0; k <= 20; ++k) {
    const double cdf = BinomialCdf(k, 20, p);
    EXPECT_GE(cdf, previous);
    previous = cdf;
  }
}

INSTANTIATE_TEST_SUITE_P(ProbabilityGrid, BinomialCdfSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99));

}  // namespace
}  // namespace netbone
