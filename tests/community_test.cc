// Tests for the community substrate: partitions, modularity, label
// propagation, Louvain, NMI, and the map equation (the Sec. VI toolkit).

#include <cmath>

#include <gtest/gtest.h>

#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/map_equation.h"
#include "community/modularity.h"
#include "community/nmi.h"
#include "community/partition.h"
#include "gen/planted_partition.h"
#include "graph/builder.h"

namespace netbone {
namespace {

Graph TwoTriangles() {
  // Two triangles joined by one weak bridge — the canonical two-community
  // graph.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(0, 2, 1.0);
  builder.AddEdge(3, 4, 1.0);
  builder.AddEdge(4, 5, 1.0);
  builder.AddEdge(3, 5, 1.0);
  builder.AddEdge(2, 3, 1.0);
  return *builder.Build();
}

Partition TwoTrianglesTruth() {
  return Partition(std::vector<int32_t>{0, 0, 0, 1, 1, 1});
}

TEST(PartitionTest, CompactsArbitraryIds) {
  const Partition p(std::vector<int32_t>{7, 7, 3, 9, 3});
  EXPECT_EQ(p.num_communities(), 3);
  EXPECT_EQ(p.of(0), p.of(1));
  EXPECT_EQ(p.of(2), p.of(4));
  EXPECT_NE(p.of(0), p.of(3));
  const auto sizes = p.CommunitySizes();
  EXPECT_EQ(sizes[static_cast<size_t>(p.of(0))], 2);
}

TEST(PartitionTest, TrivialAndSingletons) {
  const Partition trivial = Partition::Trivial(4);
  EXPECT_EQ(trivial.num_communities(), 1);
  const Partition singles = Partition::Singletons(4);
  EXPECT_EQ(singles.num_communities(), 4);
}

TEST(ModularityTest, KnownValueOnTwoTriangles) {
  // Standard worked example: two triangles + bridge, ground truth split.
  // W = 7; internal weights 3 and 3; strengths 7 and 7 (2W = 14).
  // Q = (3/7 - (7/14)^2) * 2 = 6/7 - 0.5 = 0.357142...
  const Graph g = TwoTriangles();
  const auto q = Modularity(g, TwoTrianglesTruth());
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(ModularityTest, TrivialPartitionScoresZero) {
  const Graph g = TwoTriangles();
  const auto q = Modularity(g, Partition::Trivial(6));
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 0.0, 1e-12);
}

TEST(ModularityTest, TruthBeatsRandomSplit) {
  const Graph g = TwoTriangles();
  const auto truth = Modularity(g, TwoTrianglesTruth());
  const auto shuffled =
      Modularity(g, Partition(std::vector<int32_t>{0, 1, 0, 1, 0, 1}));
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(shuffled.ok());
  EXPECT_GT(*truth, *shuffled);
}

TEST(ModularityTest, DirectedVariantRuns) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 0, 2.0);
  builder.AddEdge(2, 3, 2.0);
  builder.AddEdge(3, 2, 2.0);
  builder.AddEdge(1, 2, 0.5);
  const Graph g = *builder.Build();
  const auto q =
      Modularity(g, Partition(std::vector<int32_t>{0, 0, 1, 1}));
  ASSERT_TRUE(q.ok());
  EXPECT_GT(*q, 0.0);
}

TEST(ModularityTest, RejectsMismatchedPartition) {
  const Graph g = TwoTriangles();
  EXPECT_FALSE(Modularity(g, Partition::Trivial(5)).ok());
}

TEST(LabelPropagationTest, SeparatesCliques) {
  const Graph g = TwoTriangles();
  const auto p = LabelPropagation(g, {.seed = 3});
  ASSERT_TRUE(p.ok());
  // Triangle members end together; the two triangles may or may not merge
  // across the weak bridge, but never split internally.
  EXPECT_EQ(p->of(0), p->of(1));
  EXPECT_EQ(p->of(1), p->of(2));
  EXPECT_EQ(p->of(3), p->of(4));
  EXPECT_EQ(p->of(4), p->of(5));
}

TEST(LouvainTest, RecoversPlantedBlocks) {
  PlantedPartitionOptions options;
  options.num_nodes = 60;
  options.num_blocks = 3;
  options.p_in = 0.9;
  options.mean_weight_in = 30.0;
  options.p_out = 0.3;
  options.mean_weight_out = 1.0;
  options.seed = 21;
  const auto pp = GeneratePlantedPartition(options);
  ASSERT_TRUE(pp.ok());
  const auto found = Louvain(pp->graph, {.seed = 5});
  ASSERT_TRUE(found.ok());
  const auto nmi =
      NormalizedMutualInformation(*found, Partition(pp->block));
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(*nmi, 0.9);
}

TEST(LouvainTest, ModularityAtLeastAsGoodAsTruth) {
  const auto pp = GeneratePlantedPartition(
      {.num_nodes = 60, .num_blocks = 3, .seed = 22});
  ASSERT_TRUE(pp.ok());
  const auto found = Louvain(pp->graph, {.seed = 1});
  ASSERT_TRUE(found.ok());
  const auto q_found = Modularity(pp->graph, *found);
  const auto q_truth = Modularity(pp->graph, Partition(pp->block));
  ASSERT_TRUE(q_found.ok());
  ASSERT_TRUE(q_truth.ok());
  EXPECT_GE(*q_found, *q_truth - 1e-9);
}

TEST(LouvainTest, HandlesDirectedInputBySymmetrizing) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 5.0);
  builder.AddEdge(1, 0, 5.0);
  builder.AddEdge(2, 3, 5.0);
  builder.AddEdge(3, 2, 5.0);
  builder.AddEdge(0, 2, 0.1);
  const auto p = Louvain(*builder.Build(), {.seed = 2});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->of(0), p->of(1));
  EXPECT_EQ(p->of(2), p->of(3));
  EXPECT_NE(p->of(0), p->of(2));
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  const Partition p(std::vector<int32_t>{0, 0, 1, 1, 2});
  const auto nmi = NormalizedMutualInformation(p, p);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, RelabelingDoesNotMatter) {
  const Partition a(std::vector<int32_t>{0, 0, 1, 1});
  const Partition b(std::vector<int32_t>{5, 5, 2, 2});
  const auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreZero) {
  // Crossed design: every combination appears once.
  const Partition a(std::vector<int32_t>{0, 0, 1, 1});
  const Partition b(std::vector<int32_t>{0, 1, 0, 1});
  const auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 0.0, 1e-12);
}

TEST(NmiTest, PartialAgreementIsBetweenZeroAndOne) {
  const Partition a(std::vector<int32_t>{0, 0, 0, 1, 1, 1});
  const Partition b(std::vector<int32_t>{0, 0, 1, 1, 1, 1});
  const auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(*nmi, 0.2);
  EXPECT_LT(*nmi, 1.0);
}

TEST(NmiTest, EntropyOfUniformPartition) {
  const Partition p(std::vector<int32_t>{0, 1, 2, 3});
  EXPECT_NEAR(PartitionEntropy(p), 2.0, 1e-12);  // log2(4)
  EXPECT_NEAR(PartitionEntropy(Partition::Trivial(10)), 0.0, 1e-12);
}

TEST(NmiTest, SizeMismatchFails) {
  EXPECT_FALSE(NormalizedMutualInformation(Partition::Trivial(3),
                                           Partition::Trivial(4))
                   .ok());
}

TEST(MapEquationTest, OneLevelCodelengthIsVisitRateEntropy) {
  // Uniform 4-cycle: every node has visit rate 1/4 -> entropy 2 bits.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  builder.AddEdge(3, 0, 1.0);
  const auto h = OneLevelCodelength(*builder.Build());
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, 2.0, 1e-12);
}

TEST(MapEquationTest, SingletonPartitionMatchesKnownFormula) {
  // With every node its own module, q_m = p_m (no self-loops), and the map
  // equation reduces to plogp(q) + sum_m plogp(2 p_m) - 2 sum plogp(p_m)
  // ... computed directly here for the 4-cycle where all p = 1/4, q = 1.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  builder.AddEdge(3, 0, 1.0);
  const Graph g = *builder.Build();
  const auto l = MapEquationCodelength(g, Partition::Singletons(4));
  ASSERT_TRUE(l.ok());
  // L = plogp(1) - 2*4*plogp(1/4) + 4*plogp(1/2) - 4*plogp(1/4)
  //   = 0 - 8*(-0.5) + 4*(-0.5) - 4*(-0.5) = 4 - 2 + 2 = 4.
  EXPECT_NEAR(*l, 4.0, 1e-12);
}

TEST(MapEquationTest, GoodPartitionCompressesModularGraph) {
  PlantedPartitionOptions options;
  options.num_nodes = 90;
  options.num_blocks = 3;
  options.p_in = 0.8;
  options.mean_weight_in = 20.0;
  options.p_out = 0.2;
  options.mean_weight_out = 1.0;
  options.seed = 31;
  const auto pp = GeneratePlantedPartition(options);
  ASSERT_TRUE(pp.ok());
  const auto one_level = OneLevelCodelength(pp->graph);
  const auto two_level =
      MapEquationCodelength(pp->graph, Partition(pp->block));
  ASSERT_TRUE(one_level.ok());
  ASSERT_TRUE(two_level.ok());
  EXPECT_LT(*two_level, *one_level);  // communities compress the walk
}

TEST(MapEquationTest, TrivialPartitionEqualsOneLevel) {
  // One module holding everything: the index codebook vanishes and the
  // module codebook is exactly the node-visit entropy.
  const Graph g = TwoTriangles();
  const auto one_level = OneLevelCodelength(g);
  const auto trivial = MapEquationCodelength(g, Partition::Trivial(6));
  ASSERT_TRUE(one_level.ok());
  ASSERT_TRUE(trivial.ok());
  EXPECT_NEAR(*trivial, *one_level, 1e-12);
}

TEST(GreedyInfomapTest, FindsPlantedModules) {
  PlantedPartitionOptions options;
  options.num_nodes = 75;
  options.num_blocks = 3;
  options.p_in = 0.9;
  options.mean_weight_in = 25.0;
  options.p_out = 0.15;
  options.mean_weight_out = 1.0;
  options.seed = 41;
  const auto pp = GeneratePlantedPartition(options);
  ASSERT_TRUE(pp.ok());
  const auto found = GreedyInfomap(pp->graph, {.seed = 2});
  ASSERT_TRUE(found.ok());
  const auto nmi =
      NormalizedMutualInformation(*found, Partition(pp->block));
  ASSERT_TRUE(nmi.ok());
  EXPECT_GT(*nmi, 0.8);
  // And its codelength must not exceed the singleton baseline.
  const auto l_found = MapEquationCodelength(pp->graph, *found);
  const auto l_single =
      MapEquationCodelength(pp->graph, Partition::Singletons(75));
  ASSERT_TRUE(l_found.ok());
  ASSERT_TRUE(l_single.ok());
  EXPECT_LE(*l_found, *l_single + 1e-9);
}

TEST(GreedyInfomapTest, IncrementalBookkeepingMatchesBatchCodelength) {
  // The greedy optimizer maintains q/p incrementally; its final partition
  // re-scored from scratch must agree with what the incremental state
  // implied (we check by re-scoring and asserting the partition is at
  // least as good as both extremes).
  const auto pp = GeneratePlantedPartition(
      {.num_nodes = 40, .num_blocks = 2, .seed = 51});
  ASSERT_TRUE(pp.ok());
  const auto found = GreedyInfomap(pp->graph, {.seed = 9});
  ASSERT_TRUE(found.ok());
  const auto l = MapEquationCodelength(pp->graph, *found);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(std::isfinite(*l));
  EXPECT_GT(*l, 0.0);
}

}  // namespace
}  // namespace netbone
