// Tests for the Noise-Corrected backbone (paper Sec. IV): the lift
// transform, the Bayesian posterior, the delta-method variance, the
// delta filter, and the Fig. 3 toy-example behaviour.

#include "core/noise_corrected.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/disparity_filter.h"
#include "core/filter.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "stats/distributions.h"

namespace netbone {
namespace {

Graph MakeToyHub() {
  // Paper Fig. 3: hub (0) connected to five nodes; nodes 1 and 2 are also
  // connected to each other, more weakly than their hub links.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(0, 2, 10.0);
  builder.AddEdge(0, 3, 10.0);
  builder.AddEdge(0, 4, 10.0);
  builder.AddEdge(0, 5, 10.0);
  builder.AddEdge(1, 2, 4.0);
  return *builder.Build();
}

TEST(NoiseCorrectedEdgeTest, ExpectationMatchesNullModel) {
  const auto detail = NoiseCorrectedEdge(/*nij=*/5.0, /*ni_out=*/20.0,
                                         /*nj_in=*/30.0, /*n_total=*/100.0);
  ASSERT_TRUE(detail.ok()) << detail.status().ToString();
  EXPECT_DOUBLE_EQ(detail->expectation, 20.0 * 30.0 / 100.0);
  EXPECT_DOUBLE_EQ(detail->lift, 5.0 / 6.0);
}

TEST(NoiseCorrectedEdgeTest, TransformedLiftAtExpectationIsZero) {
  // Lift == 1 must map to score == 0 (Eq. 1 is centered).
  const auto detail = NoiseCorrectedEdge(6.0, 20.0, 30.0, 100.0);
  ASSERT_TRUE(detail.ok());
  EXPECT_NEAR(detail->lift, 1.0, 1e-12);
  EXPECT_NEAR(detail->transformed_lift, 0.0, 1e-12);
}

TEST(NoiseCorrectedEdgeTest, TransformIsSymmetricAroundOne) {
  // The paper's motivating example: lift 0.1 and lift 10 map to -0.81 and
  // +0.81 respectively.
  const double expectation = 20.0 * 30.0 / 100.0;  // = 6
  const auto low = NoiseCorrectedEdge(0.1 * expectation, 20.0, 30.0, 100.0);
  const auto high = NoiseCorrectedEdge(10.0 * expectation, 20.0, 30.0, 100.0);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_NEAR(low->transformed_lift, -10.0 / 11.0 * 0.9, 1e-9);
  EXPECT_NEAR(low->transformed_lift, -high->transformed_lift, 1e-12);
  EXPECT_NEAR(high->transformed_lift, 0.818181818, 1e-6);
}

TEST(NoiseCorrectedEdgeTest, ZeroWeightEdgeHasNonDegenerateVariance) {
  // The paper's central fix: N_ij = 0 must NOT produce zero variance
  // (the Bayesian prior keeps the posterior success probability > 0).
  const auto detail = NoiseCorrectedEdge(0.0, 20.0, 30.0, 100.0);
  ASSERT_TRUE(detail.ok());
  EXPECT_GT(detail->posterior_p, 0.0);
  EXPECT_GT(detail->variance_nij, 0.0);
  EXPECT_GT(detail->sdev, 0.0);
  EXPECT_DOUBLE_EQ(detail->transformed_lift, -1.0);
}

TEST(NoiseCorrectedEdgeTest, PluginEstimatorDegeneratesAtZero) {
  // Ablation contrast: without the Bayesian prior a zero-weight edge has
  // exactly zero estimated variance — the degeneracy Sec. IV describes.
  NoiseCorrectedOptions options;
  options.bayesian_prior = false;
  const auto detail = NoiseCorrectedEdge(0.0, 20.0, 30.0, 100.0, options);
  ASSERT_TRUE(detail.ok());
  EXPECT_DOUBLE_EQ(detail->posterior_p, 0.0);
  EXPECT_DOUBLE_EQ(detail->variance_nij, 0.0);
  EXPECT_DOUBLE_EQ(detail->sdev, 0.0);
}

TEST(NoiseCorrectedEdgeTest, PosteriorBlendsPriorTowardObservation) {
  // Observation far above the prior mean must pull the posterior up, but
  // not beyond the observed frequency.
  const double nij = 50.0, ni = 100.0, nj = 100.0, total = 1000.0;
  const auto detail = NoiseCorrectedEdge(nij, ni, nj, total);
  ASSERT_TRUE(detail.ok());
  const double prior_mean = ni * nj / (total * total);  // 0.01
  const double observed = nij / total;                  // 0.05
  EXPECT_GT(detail->posterior_p, prior_mean);
  EXPECT_LT(detail->posterior_p, observed);
}

TEST(NoiseCorrectedEdgeTest, PosteriorMatchesHandComputedBetaUpdate) {
  // Full hand computation for nij=4, ni=14, nj=14, n=108 (the Fig. 3
  // peripheral edge): prior moments -> Eqs. 7-8 -> Eq. 4 posterior.
  const auto detail = NoiseCorrectedEdge(4.0, 14.0, 14.0, 108.0);
  ASSERT_TRUE(detail.ok());
  const PriorMoments prior = HypergeometricPriorMoments(14.0, 14.0, 108.0);
  const auto params = FitBetaByMoments(prior.mean, prior.variance);
  ASSERT_TRUE(params.ok());
  const double alpha_post = params->alpha + 4.0;
  const double beta_post = params->beta + 104.0;
  EXPECT_NEAR(detail->posterior_p, alpha_post / (alpha_post + beta_post),
              1e-12);
}

TEST(NoiseCorrectedEdgeTest, VarianceMatchesDeltaMethodFormula) {
  const double nij = 7.0, ni = 25.0, nj = 40.0, total = 200.0;
  const auto detail = NoiseCorrectedEdge(nij, ni, nj, total);
  ASSERT_TRUE(detail.ok());
  const double kappa = total / (ni * nj);
  const double dkappa =
      1.0 / (ni * nj) - total * (ni + nj) / ((ni * nj) * (ni * nj));
  const double denom = (kappa * nij + 1.0) * (kappa * nij + 1.0);
  const double jacobian = 2.0 * (kappa + nij * dkappa) / denom;
  EXPECT_NEAR(detail->variance_lift,
              detail->variance_nij * jacobian * jacobian, 1e-12);
  EXPECT_NEAR(detail->sdev, std::sqrt(detail->variance_lift), 1e-12);
}

TEST(NoiseCorrectedEdgeTest, RejectsNonPositiveTotals) {
  EXPECT_FALSE(NoiseCorrectedEdge(1.0, 2.0, 3.0, 0.0).ok());
  EXPECT_FALSE(NoiseCorrectedEdge(1.0, 0.0, 3.0, 10.0).ok());
  EXPECT_FALSE(NoiseCorrectedEdge(1.0, 2.0, 0.0, 10.0).ok());
  EXPECT_FALSE(NoiseCorrectedEdge(-1.0, 2.0, 3.0, 10.0).ok());
}

TEST(NoiseCorrectedEdgeTest, PythonErratumIsNumericallyClose) {
  // The reference implementation's beta-prior typo changes results by a
  // negligible amount for realistic marginals (DESIGN.md §3).
  NoiseCorrectedOptions erratum;
  erratum.python_erratum_beta = true;
  const auto paper = NoiseCorrectedEdge(10.0, 300.0, 200.0, 50000.0);
  const auto python = NoiseCorrectedEdge(10.0, 300.0, 200.0, 50000.0,
                                         erratum);
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(python.ok());
  EXPECT_DOUBLE_EQ(paper->transformed_lift, python->transformed_lift);
  EXPECT_NEAR(paper->sdev, python->sdev, 1e-3 * paper->sdev);
}

TEST(NoiseCorrectedEdgeTest, BinomialPvalueVariantScoresInUnitInterval) {
  NoiseCorrectedOptions options;
  options.use_binomial_pvalue = true;
  const auto high = NoiseCorrectedEdge(50.0, 100.0, 100.0, 1000.0, options);
  const auto low = NoiseCorrectedEdge(1.0, 100.0, 100.0, 1000.0, options);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(low.ok());
  EXPECT_GT(high->transformed_lift, 0.99);  // far above expectation
  EXPECT_LT(low->transformed_lift, 0.05);   // far below expectation
  EXPECT_EQ(high->sdev, 0.0);               // footnote 2: no sdev available
}

// ---------------------------------------------------------------------------
// Property sweeps (TEST_P): invariants over a grid of edge configurations.
// ---------------------------------------------------------------------------

using EdgeConfig = std::tuple<double, double, double, double>;

class NoiseCorrectedPropertyTest
    : public ::testing::TestWithParam<EdgeConfig> {};

TEST_P(NoiseCorrectedPropertyTest, ScoreIsInHalfOpenUnitInterval) {
  const auto [nij, ni, nj, total] = GetParam();
  const auto detail = NoiseCorrectedEdge(nij, ni, nj, total);
  ASSERT_TRUE(detail.ok()) << detail.status().ToString();
  EXPECT_GE(detail->transformed_lift, -1.0);
  EXPECT_LT(detail->transformed_lift, 1.0);
}

TEST_P(NoiseCorrectedPropertyTest, VarianceIsNonNegativeAndFinite) {
  const auto [nij, ni, nj, total] = GetParam();
  const auto detail = NoiseCorrectedEdge(nij, ni, nj, total);
  ASSERT_TRUE(detail.ok());
  EXPECT_GE(detail->variance_lift, 0.0);
  EXPECT_TRUE(std::isfinite(detail->variance_lift));
  EXPECT_TRUE(std::isfinite(detail->sdev));
}

TEST_P(NoiseCorrectedPropertyTest, PosteriorProbabilityIsInUnitInterval) {
  const auto [nij, ni, nj, total] = GetParam();
  const auto detail = NoiseCorrectedEdge(nij, ni, nj, total);
  ASSERT_TRUE(detail.ok());
  EXPECT_GT(detail->posterior_p, 0.0);
  EXPECT_LT(detail->posterior_p, 1.0);
}

TEST_P(NoiseCorrectedPropertyTest, ScoreIncreasesWithWeight) {
  // L~ is monotone in nij, holding marginals fixed.
  const auto [nij, ni, nj, total] = GetParam();
  const auto at = NoiseCorrectedEdge(nij, ni, nj, total);
  const auto above = NoiseCorrectedEdge(nij + 0.5, ni, nj, total);
  ASSERT_TRUE(at.ok());
  ASSERT_TRUE(above.ok());
  EXPECT_GT(above->transformed_lift, at->transformed_lift);
}

TEST_P(NoiseCorrectedPropertyTest, SymmetricInMarginals) {
  // Swapping n_i. and n_.j leaves every NC quantity unchanged.
  const auto [nij, ni, nj, total] = GetParam();
  const auto forward = NoiseCorrectedEdge(nij, ni, nj, total);
  const auto swapped = NoiseCorrectedEdge(nij, nj, ni, total);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(swapped.ok());
  EXPECT_DOUBLE_EQ(forward->transformed_lift, swapped->transformed_lift);
  EXPECT_DOUBLE_EQ(forward->sdev, swapped->sdev);
}

TEST_P(NoiseCorrectedPropertyTest, PvalueVariantAgreesDirectionally) {
  // The footnote-2 p-value crosses 0.5 roughly where the lift crosses 1.
  const auto [nij, ni, nj, total] = GetParam();
  NoiseCorrectedOptions pvalue;
  pvalue.use_binomial_pvalue = true;
  const auto transform = NoiseCorrectedEdge(nij, ni, nj, total);
  const auto binomial = NoiseCorrectedEdge(nij, ni, nj, total, pvalue);
  ASSERT_TRUE(transform.ok());
  ASSERT_TRUE(binomial.ok());
  if (transform->transformed_lift > 0.25) {
    EXPECT_GT(binomial->transformed_lift, 0.5);
  }
  if (transform->transformed_lift < -0.25) {
    EXPECT_LT(binomial->transformed_lift, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeGrid, NoiseCorrectedPropertyTest,
    ::testing::Values(
        EdgeConfig{0.0, 10.0, 10.0, 100.0},
        EdgeConfig{1.0, 10.0, 10.0, 100.0},
        EdgeConfig{5.0, 10.0, 10.0, 100.0},
        EdgeConfig{1.0, 50.0, 3.0, 200.0},
        EdgeConfig{20.0, 60.0, 80.0, 500.0},
        EdgeConfig{100.0, 400.0, 300.0, 10000.0},
        EdgeConfig{3.0, 3.0, 3.0, 1000.0},
        EdgeConfig{2.0, 900.0, 900.0, 2000.0},
        EdgeConfig{7.0, 25.0, 40.0, 200.0},
        EdgeConfig{1.0, 1.0, 1.0, 50.0},
        EdgeConfig{500.0, 2000.0, 1500.0, 1000000.0},
        EdgeConfig{0.5, 12.5, 7.25, 333.0}));

// ---------------------------------------------------------------------------
// Whole-graph behaviour.
// ---------------------------------------------------------------------------

TEST(NoiseCorrectedGraphTest, Fig3ToyNcPrefersPeripheralEdge) {
  // The paper's qualitative claim (Fig. 3): the weak peripheral-peripheral
  // connection is MORE unanticipated than the strong periphery-hub edges
  // of the same nodes, because those nodes "tend to have low edge weights
  // in general".
  const Graph g = MakeToyHub();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  const EdgeId hub_to_1 = g.FindEdge(0, 1);
  const EdgeId hub_to_2 = g.FindEdge(0, 2);
  const EdgeId peripheral = g.FindEdge(1, 2);
  ASSERT_GE(hub_to_1, 0);
  ASSERT_GE(peripheral, 0);
  EXPECT_GT(nc->at(peripheral).score, nc->at(hub_to_1).score);
  EXPECT_GT(nc->at(peripheral).score, nc->at(hub_to_2).score);
  // And the peripheral edge outranks every hub spoke.
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (id == peripheral) continue;
    EXPECT_GT(nc->at(peripheral).score, nc->at(id).score)
        << "edge " << g.edge(id).src << "-" << g.edge(id).dst;
  }
}

TEST(NoiseCorrectedGraphTest, Fig3ToyDisparityPrefersHubEdges) {
  // The contrast: DF keeps the hub connections of nodes 1 and 2 (huge from
  // the peripheral node's own perspective) and ranks the 1-2 edge last.
  const Graph g = MakeToyHub();
  const auto df = DisparityFilter(g);
  ASSERT_TRUE(df.ok());
  const EdgeId hub_to_1 = g.FindEdge(0, 1);
  const EdgeId peripheral = g.FindEdge(1, 2);
  EXPECT_GT(df->at(hub_to_1).score, df->at(peripheral).score);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (id == peripheral) continue;
    EXPECT_GE(df->at(id).score, df->at(peripheral).score);
  }
}

TEST(NoiseCorrectedGraphTest, Fig3TopFourMatchesFigure) {
  // At an edge budget of 4, NC keeps the peripheral edge and the three
  // pendant spokes; the hub's links to the interconnected pair (the blue
  // dashed edges of the figure) are exactly the ones dropped.
  const Graph g = MakeToyHub();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  const BackboneMask mask = TopK(*nc, 4);
  EXPECT_EQ(mask.kept, 4);
  EXPECT_TRUE(mask.keep[static_cast<size_t>(g.FindEdge(1, 2))]);
  EXPECT_TRUE(mask.keep[static_cast<size_t>(g.FindEdge(0, 3))]);
  EXPECT_TRUE(mask.keep[static_cast<size_t>(g.FindEdge(0, 4))]);
  EXPECT_TRUE(mask.keep[static_cast<size_t>(g.FindEdge(0, 5))]);
  EXPECT_FALSE(mask.keep[static_cast<size_t>(g.FindEdge(0, 1))]);
  EXPECT_FALSE(mask.keep[static_cast<size_t>(g.FindEdge(0, 2))]);
}

TEST(NoiseCorrectedGraphTest, UndirectedScoresAreEndpointSymmetric) {
  // For an undirected graph the marginals are symmetric, so scoring must
  // not depend on the stored (src, dst) orientation.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(3, 1, 5.0);  // deliberately reversed order
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 7.0);
  builder.AddEdge(0, 1, 1.0);
  const Graph g = *builder.Build();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    const auto detail = NoiseCorrectedEdge(
        e.weight, g.out_strength(e.dst), g.in_strength(e.src),
        g.matrix_total());
    ASSERT_TRUE(detail.ok());
    EXPECT_DOUBLE_EQ(nc->at(id).score, detail->transformed_lift);
  }
}

TEST(NoiseCorrectedGraphTest, DirectedUsesDirectedMarginals) {
  // In a directed 2-cycle with asymmetric weights the two directions must
  // receive different scores.
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(1, 0, 1.0);
  builder.AddEdge(0, 2, 5.0);
  builder.AddEdge(2, 1, 5.0);
  const Graph g = *builder.Build();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  const EdgeId forward = g.FindEdge(0, 1);
  const EdgeId backward = g.FindEdge(1, 0);
  EXPECT_NE(nc->at(forward).score, nc->at(backward).score);
}

TEST(NoiseCorrectedGraphTest, DeltaFilterIsMonotoneInDelta) {
  const Graph g = MakeToyHub();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  int64_t previous = g.num_edges() + 1;
  for (const double delta : {0.0, 1.0, 1.28, 1.64, 2.32, 10.0, 100.0}) {
    const BackboneMask mask = FilterByDelta(*nc, delta);
    EXPECT_LE(mask.kept, previous) << "delta=" << delta;
    previous = mask.kept;
  }
}

TEST(NoiseCorrectedGraphTest, FailsOnEmptyGraph) {
  GraphBuilder builder(Directedness::kDirected);
  builder.ReserveNodes(5);
  const Graph g = *builder.Build();
  EXPECT_FALSE(NoiseCorrected(g).ok());
}

TEST(NoiseCorrectedGraphTest, DetailsAlignWithEdgeTable) {
  const Graph g = MakeToyHub();
  std::vector<NoiseCorrectedDetail> details;
  const auto nc = NoiseCorrectedWithDetails(g, {}, &details);
  ASSERT_TRUE(nc.ok());
  ASSERT_EQ(static_cast<int64_t>(details.size()), g.num_edges());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_DOUBLE_EQ(details[static_cast<size_t>(id)].transformed_lift,
                     nc->at(id).score);
    EXPECT_DOUBLE_EQ(details[static_cast<size_t>(id)].sdev,
                     nc->at(id).sdev);
  }
}

TEST(NoiseCorrectedGraphTest, RejectsNullDetails) {
  const Graph g = MakeToyHub();
  EXPECT_FALSE(NoiseCorrectedWithDetails(g, {}, nullptr).ok());
}

TEST(NoiseCorrectedGraphTest, ScoresAndDetailsIdenticalAcrossThreadCounts) {
  // The parallel sweep (ParallelScoreEdges) must be bit-identical to the
  // serial one, including the per-edge detail table, on a graph large
  // enough to split into several chunks.
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 4000, .average_degree = 6.0, .seed = 13});
  ASSERT_TRUE(g.ok());
  NoiseCorrectedOptions serial;
  serial.num_threads = 1;
  std::vector<NoiseCorrectedDetail> serial_details;
  const auto reference = NoiseCorrectedWithDetails(*g, serial,
                                                   &serial_details);
  ASSERT_TRUE(reference.ok());
  for (const int threads : {2, 8}) {
    NoiseCorrectedOptions options;
    options.num_threads = threads;
    std::vector<NoiseCorrectedDetail> details;
    const auto nc = NoiseCorrectedWithDetails(*g, options, &details);
    ASSERT_TRUE(nc.ok());
    ASSERT_EQ(details.size(), serial_details.size());
    for (EdgeId id = 0; id < g->num_edges(); ++id) {
      const size_t i = static_cast<size_t>(id);
      EXPECT_EQ(nc->at(id).score, reference->at(id).score);
      EXPECT_EQ(nc->at(id).sdev, reference->at(id).sdev);
      EXPECT_EQ(details[i].posterior_p, serial_details[i].posterior_p);
      EXPECT_EQ(details[i].variance_lift, serial_details[i].variance_lift);
    }
  }
}

TEST(NoiseCorrectedGraphTest, ParallelSweepReportsSerialFirstError) {
  // A zero-weight edge to an otherwise-isolated node breaks NC; the
  // parallel sweep must surface the same failure for every thread count.
  GraphBuilder builder(Directedness::kUndirected);
  for (NodeId v = 0; v < 5000; ++v) builder.AddEdge(v, v + 1, 3.0);
  builder.AddEdge(2500, 6000, 0.0);
  const Graph g = *builder.Build();
  for (const int threads : {1, 2, 8}) {
    NoiseCorrectedOptions options;
    options.num_threads = threads;
    const auto nc = NoiseCorrected(g, options);
    ASSERT_FALSE(nc.ok());
    EXPECT_TRUE(nc.status().IsInvalidArgument());
  }
}

TEST(NoiseCorrectedGraphTest, ShiftedScoresMatchManualComputation) {
  const Graph g = MakeToyHub();
  const auto nc = NoiseCorrected(g);
  ASSERT_TRUE(nc.ok());
  const std::vector<double> shifted = nc->ShiftedScores(1.64);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_DOUBLE_EQ(shifted[static_cast<size_t>(id)],
                     nc->at(id).score - 1.64 * nc->at(id).sdev);
  }
}

}  // namespace
}  // namespace netbone
