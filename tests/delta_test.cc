// Tests for the incremental rescoring path: GraphDelta extraction, the
// DeltaRescore capability, the ScoreOrder patch constructor, and the
// dynamic-schedule scoring overloads it rides on. The central property,
// checked under randomized deltas: the incremental path's output — scores,
// order, sweep profile, errors — is bit-identical to a full rescore for
// every method and thread count, with zero global sorts.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/delta_rescore.h"
#include "core/registry.h"
#include "core/scored_edges.h"
#include "core/sweep.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "graph/graph.h"

namespace netbone {
namespace {

struct TestEdge {
  NodeId src;
  NodeId dst;
  double weight;
};

Graph BuildGraph(Directedness directedness, NodeId num_nodes,
                 const std::vector<TestEdge>& edges) {
  GraphBuilder builder(directedness, DuplicateEdgePolicy::kSum,
                       SelfLoopPolicy::kDrop);
  builder.ReserveNodes(num_nodes);
  for (const TestEdge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  Result<Graph> graph = builder.Build();
  EXPECT_TRUE(graph.ok()) << graph.status().message();
  return *std::move(graph);
}

/// A random connected-ish multigraph with small integer weights. Integer
/// weights make marginal and total sums exact, so weight redistribution
/// preserves totals bitwise — the regime where NC stays incremental.
std::vector<TestEdge> RandomEdges(Rng& rng, NodeId num_nodes,
                                  int64_t num_edges, bool directed) {
  std::vector<TestEdge> edges;
  for (int64_t i = 0; i < num_edges; ++i) {
    NodeId a = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(num_nodes)));
    NodeId b = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(num_nodes)));
    if (a == b) continue;  // builder drops self-loops anyway
    if (!directed && a > b) std::swap(a, b);
    edges.push_back(TestEdge{
        a, b, static_cast<double>(rng.UniformInt(1, 20))});
  }
  return edges;
}

/// Applies a random mutation: some weight changes, some deletions, some
/// insertions. When `preserve_total` is set, mutations only move integer
/// weight between surviving edges, keeping N_.. bitwise equal.
std::vector<TestEdge> Mutate(Rng& rng, const Graph& base,
                             bool preserve_total) {
  std::vector<TestEdge> edges;
  for (const Edge& e : base.edges()) {
    edges.push_back(TestEdge{e.src, e.dst, e.weight});
  }
  const size_t n = edges.size();
  if (n < 4) return edges;

  if (preserve_total) {
    // Move one unit of weight between random edge pairs.
    const int64_t transfers = rng.UniformInt(1, 4);
    for (int64_t t = 0; t < transfers; ++t) {
      const size_t a = static_cast<size_t>(rng.NextBounded(n));
      const size_t b = static_cast<size_t>(rng.NextBounded(n));
      if (a == b) continue;
      if (edges[a].weight >= 2.0) {
        edges[a].weight -= 1.0;
        edges[b].weight += 1.0;
      }
    }
    return edges;
  }

  // Arbitrary churn: rescale weights, drop a few edges, add a few.
  const int64_t changes = rng.UniformInt(1, 4);
  for (int64_t c = 0; c < changes; ++c) {
    const size_t i = static_cast<size_t>(rng.NextBounded(n));
    edges[i].weight = static_cast<double>(rng.UniformInt(1, 40));
  }
  const int64_t deletions = rng.UniformInt(0, 2);
  for (int64_t d = 0; d < deletions && edges.size() > 4; ++d) {
    edges.erase(edges.begin() +
                static_cast<int64_t>(rng.NextBounded(edges.size())));
  }
  const int64_t insertions = rng.UniformInt(0, 2);
  for (int64_t ins = 0; ins < insertions; ++ins) {
    NodeId a = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(base.num_nodes())));
    NodeId b = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(base.num_nodes())));
    if (a == b) continue;
    if (!base.directed() && a > b) std::swap(a, b);
    edges.push_back(TestEdge{
        a, b, static_cast<double>(rng.UniformInt(1, 20))});
  }
  return edges;
}

TEST(GraphDeltaTest, ClassifiesChangesInsertionsDeletions) {
  const Graph base = BuildGraph(Directedness::kUndirected, 5,
                                {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 4.0}});
  const Graph next = BuildGraph(Directedness::kUndirected, 5,
                                {{0, 1, 2.0}, {1, 2, 7.0}, {3, 4, 1.0}});
  const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
  ASSERT_TRUE(delta.ok());

  ASSERT_EQ(delta->changed.size(), 1u);
  EXPECT_EQ(delta->changed[0].base_id, base.FindEdge(1, 2));
  EXPECT_EQ(delta->changed[0].next_id, next.FindEdge(1, 2));
  EXPECT_EQ(delta->changed[0].base_weight, 3.0);
  EXPECT_EQ(delta->changed[0].next_weight, 7.0);

  ASSERT_EQ(delta->deleted.size(), 1u);
  EXPECT_EQ(delta->deleted[0], base.FindEdge(2, 3));
  ASSERT_EQ(delta->inserted.size(), 1u);
  EXPECT_EQ(delta->inserted[0], next.FindEdge(3, 4));

  EXPECT_FALSE(delta->totals_equal);  // 9 vs 10
  EXPECT_EQ(delta->AffectedEdges(), 3);
  // Nodes 0 is untouched; 1..4 all see a marginal move.
  EXPECT_EQ(delta->changed_nodes, (std::vector<NodeId>{1, 2, 3, 4}));
  // Every successor edge touches a changed node here: (0,1) via node 1,
  // (1,2) via both, (3,4) via both.
  EXPECT_EQ(delta->star_edges, (std::vector<EdgeId>{0, 1, 2}));
}

TEST(GraphDeltaTest, EmptyDeltaForIdenticalGraphs) {
  const Graph base = BuildGraph(Directedness::kDirected, 4,
                                {{0, 1, 2.0}, {1, 2, 3.0}});
  const Graph next = BuildGraph(Directedness::kDirected, 4,
                                {{0, 1, 2.0}, {1, 2, 3.0}});
  const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->Empty());
  EXPECT_TRUE(delta->totals_equal);
}

TEST(GraphDeltaTest, RejectsIncomparableGraphs) {
  const Graph undirected =
      BuildGraph(Directedness::kUndirected, 3, {{0, 1, 1.0}});
  const Graph directed =
      BuildGraph(Directedness::kDirected, 3, {{0, 1, 1.0}});
  EXPECT_FALSE(ComputeGraphDelta(undirected, directed).ok());

  GraphBuilder labeled(Directedness::kUndirected);
  labeled.AddLabeledEdge("a", "b", 1.0);
  const Graph with_labels = *labeled.Build();
  EXPECT_FALSE(ComputeGraphDelta(undirected, with_labels).ok());

  GraphBuilder other_order(Directedness::kUndirected);
  other_order.AddLabeledEdge("b", "a", 1.0);  // same network, ids swapped
  const Graph swapped = *other_order.Build();
  EXPECT_FALSE(ComputeGraphDelta(with_labels, swapped).ok());
}

TEST(GraphDeltaTest, MatchingLabeledUniversesDiff) {
  GraphBuilder a(Directedness::kUndirected);
  a.AddLabeledEdge("x", "y", 2.0);
  a.AddLabeledEdge("y", "z", 3.0);
  GraphBuilder b(Directedness::kUndirected);
  b.AddLabeledEdge("x", "y", 2.0);
  b.AddLabeledEdge("y", "z", 5.0);
  const Graph base = *a.Build();
  const Graph next = *b.Build();
  const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->changed.size(), 1u);
  EXPECT_EQ(delta->changed[0].next_weight, 5.0);
}

TEST(DeltaRescoreTest, SupportExactlyTheLocalMethods) {
  EXPECT_TRUE(SupportsDeltaRescore(Method::kNoiseCorrected));
  EXPECT_TRUE(SupportsDeltaRescore(Method::kDisparityFilter));
  EXPECT_TRUE(SupportsDeltaRescore(Method::kNaiveThreshold));
  EXPECT_FALSE(SupportsDeltaRescore(Method::kHighSalienceSkeleton));
  EXPECT_FALSE(SupportsDeltaRescore(Method::kDoublyStochastic));
  EXPECT_FALSE(SupportsDeltaRescore(Method::kMaximumSpanningTree));
  EXPECT_FALSE(SupportsDeltaRescore(Method::kKCore));
}

/// The bit-identity property, randomized: for every method, the
/// incremental result (when offered) equals a full rescore bit for bit —
/// scores, the patched order, the rebuilt profile — at thread counts
/// 1/2/8, and the patch never advances the global sort counter.
TEST(DeltaRescoreTest, RandomizedDeltasBitIdenticalToFullRescore) {
  Rng rng(20260728);
  int incremental_checked = 0;
  for (int round = 0; round < 24; ++round) {
    const bool directed = round % 2 == 1;
    const bool preserve_total = round % 3 != 0;
    const Directedness directedness =
        directed ? Directedness::kDirected : Directedness::kUndirected;
    const NodeId num_nodes = static_cast<NodeId>(rng.UniformInt(12, 40));
    const Graph base = BuildGraph(
        directedness, num_nodes,
        RandomEdges(rng, num_nodes, rng.UniformInt(30, 90), directed));
    if (base.num_edges() < 8) continue;
    const Graph next = BuildGraph(directedness, num_nodes,
                                  Mutate(rng, base, preserve_total));

    const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
    ASSERT_TRUE(delta.ok()) << delta.status().message();

    for (const Method method : AllMethods()) {
      const Result<ScoredEdges> base_scored = RunMethod(method, base);
      if (!base_scored.ok()) continue;  // method rejects this fixture
      const Result<ScoredEdges> full = RunMethod(method, next);
      ASSERT_TRUE(full.ok()) << MethodName(method) << ": "
                             << full.status().message();

      std::optional<DeltaRescoreResult> reference;
      for (const int threads : {1, 2, 8}) {
        DeltaRescoreOptions options;
        options.num_threads = threads;
        options.grain = threads == 8 ? 2 : 16;  // exercise block shapes
        const Result<std::optional<DeltaRescoreResult>> patched =
            DeltaRescore(method, *base_scored, next, *delta, options);
        ASSERT_TRUE(patched.ok()) << patched.status().message();

        if (!patched->has_value()) {
          // Exactly the documented refusals: a global method, or NC with
          // a moved matrix total.
          EXPECT_TRUE(!SupportsDeltaRescore(method) ||
                      (method == Method::kNoiseCorrected &&
                       !delta->totals_equal))
              << MethodName(method);
          continue;
        }
        ASSERT_TRUE(SupportsDeltaRescore(method));
        const DeltaRescoreResult& result = **patched;

        // Scores bitwise equal to the full rescore, sdev included.
        ASSERT_EQ(static_cast<int64_t>(result.scores.size()), full->size());
        for (EdgeId id = 0; id < full->size(); ++id) {
          EXPECT_EQ(result.scores[static_cast<size_t>(id)].score,
                    full->at(id).score)
              << MethodName(method) << " edge " << id;
          EXPECT_EQ(result.scores[static_cast<size_t>(id)].sdev,
                    full->at(id).sdev);
        }

        // Thread counts are interchangeable: identical dirty set too.
        if (!reference.has_value()) {
          reference = result;
          ++incremental_checked;
        } else {
          EXPECT_EQ(result.dirty, reference->dirty);
          EXPECT_EQ(result.base_to_next, reference->base_to_next);
        }
      }

      if (!reference.has_value()) continue;

      // The patched ScoreOrder equals a fresh sort element-for-element
      // and performs zero global sorts.
      const ScoredEdges patched_scored(&next, full->method(),
                                       reference->scores,
                                       full->has_sdev());
      const ScoreOrder base_order(*base_scored);
      const int64_t sorts_before = ScoreOrder::SortsPerformed();
      const ScoreOrder patched_order(patched_scored, base_order,
                                     reference->base_to_next,
                                     reference->dirty);
      EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before)
          << MethodName(method) << ": patching must not sort";
      const ScoreOrder full_order(*full);
      ASSERT_EQ(patched_order.size(), full_order.size());
      for (int64_t rank = 0; rank < full_order.size(); ++rank) {
        ASSERT_EQ(patched_order.id_at(rank), full_order.id_at(rank))
            << MethodName(method) << " rank " << rank;
      }

      // The profile rebuilt from the patched order matches in full.
      const SweepProfile patched_profile = BuildSweepProfile(patched_order);
      const SweepProfile full_profile = BuildSweepProfile(full_order);
      EXPECT_EQ(patched_profile.covered_nodes, full_profile.covered_nodes);
      EXPECT_EQ(patched_profile.kept_weight, full_profile.kept_weight);
      EXPECT_EQ(patched_profile.connect_k, full_profile.connect_k);
      EXPECT_EQ(patched_profile.target_nodes, full_profile.target_nodes);
    }
  }
  // The generator must actually exercise the incremental path.
  EXPECT_GE(incremental_checked, 20);
}

TEST(DeltaRescoreTest, CleanEdgesAreCopiedNotRescored) {
  // A weight change on one edge of a path graph dirties only the stars of
  // its endpoints.
  const Graph base = BuildGraph(
      Directedness::kUndirected, 6,
      {{0, 1, 4.0}, {1, 2, 4.0}, {2, 3, 4.0}, {3, 4, 4.0}, {4, 5, 4.0}});
  // Move a unit from (2,3) to (0,1): totals preserved, nodes 0..3 dirty.
  const Graph next = BuildGraph(
      Directedness::kUndirected, 6,
      {{0, 1, 5.0}, {1, 2, 4.0}, {2, 3, 3.0}, {3, 4, 4.0}, {4, 5, 4.0}});
  const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->totals_equal);
  EXPECT_EQ(delta->changed_nodes, (std::vector<NodeId>{0, 1, 2, 3}));

  const Result<ScoredEdges> base_scored =
      RunMethod(Method::kNoiseCorrected, base);
  ASSERT_TRUE(base_scored.ok());
  const Result<std::optional<DeltaRescoreResult>> patched = DeltaRescore(
      Method::kNoiseCorrected, *base_scored, next, *delta, {});
  ASSERT_TRUE(patched.ok());
  ASSERT_TRUE(patched->has_value());
  // Dirty = edges incident to nodes 0..3 = the first four edges; the
  // (4,5) edge is clean.
  EXPECT_EQ((*patched)->dirty,
            (std::vector<EdgeId>{0, 1, 2, 3}));
}

TEST(DeltaRescoreTest, NaiveThresholdDirtiesOnlyChangedEdges) {
  const Graph base = BuildGraph(
      Directedness::kUndirected, 5,
      {{0, 1, 4.0}, {1, 2, 4.0}, {2, 3, 4.0}, {3, 4, 4.0}});
  const Graph next = BuildGraph(
      Directedness::kUndirected, 5,
      {{0, 1, 6.0}, {1, 2, 4.0}, {2, 3, 4.0}, {3, 4, 4.0}});
  const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
  ASSERT_TRUE(delta.ok());
  const Result<ScoredEdges> base_scored =
      RunMethod(Method::kNaiveThreshold, base);
  ASSERT_TRUE(base_scored.ok());
  const Result<std::optional<DeltaRescoreResult>> patched = DeltaRescore(
      Method::kNaiveThreshold, *base_scored, next, *delta, {});
  ASSERT_TRUE(patched.ok());
  ASSERT_TRUE(patched->has_value());
  // NT reads only the weight: the endpoint stars stay clean.
  EXPECT_EQ((*patched)->dirty, (std::vector<EdgeId>{0}));
}

TEST(DeltaRescoreTest, NoiseCorrectedRefusesMovedTotals) {
  const Graph base = BuildGraph(Directedness::kUndirected, 4,
                                {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 4.0}});
  const Graph next = BuildGraph(Directedness::kUndirected, 4,
                                {{0, 1, 9.0}, {1, 2, 3.0}, {2, 3, 4.0}});
  const Result<GraphDelta> delta = ComputeGraphDelta(base, next);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->totals_equal);
  const Result<ScoredEdges> base_scored =
      RunMethod(Method::kNoiseCorrected, base);
  ASSERT_TRUE(base_scored.ok());
  const Result<std::optional<DeltaRescoreResult>> patched = DeltaRescore(
      Method::kNoiseCorrected, *base_scored, next, *delta, {});
  ASSERT_TRUE(patched.ok());
  EXPECT_FALSE(patched->has_value());

  // DF has no global input: the same delta stays incremental.
  const Result<ScoredEdges> base_df =
      RunMethod(Method::kDisparityFilter, base);
  ASSERT_TRUE(base_df.ok());
  const Result<std::optional<DeltaRescoreResult>> df_patched = DeltaRescore(
      Method::kDisparityFilter, *base_df, next, *delta, {});
  ASSERT_TRUE(df_patched.ok());
  EXPECT_TRUE(df_patched->has_value());
}

TEST(ScoreOrderPatchTest, InconsistentInputsFallBackToFullSort) {
  const Graph base = BuildGraph(Directedness::kUndirected, 4,
                                {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 4.0}});
  const Graph next = BuildGraph(
      Directedness::kUndirected, 4,
      {{0, 1, 2.0}, {1, 2, 3.0}, {1, 3, 5.0}, {2, 3, 4.0}});
  const Result<ScoredEdges> base_scored =
      RunMethod(Method::kNaiveThreshold, base);
  const Result<ScoredEdges> next_scored =
      RunMethod(Method::kNaiveThreshold, next);
  ASSERT_TRUE(base_scored.ok() && next_scored.ok());
  const ScoreOrder base_order(*base_scored);

  // A dirty list that omits the inserted edge (1,3) is inconsistent; the
  // patch must degrade to a counted full sort and stay correct.
  std::vector<EdgeId> base_to_next(3);
  for (EdgeId b = 0; b < 3; ++b) {
    base_to_next[static_cast<size_t>(b)] =
        next.FindEdge(base.edge(b).src, base.edge(b).dst);
  }
  const std::vector<EdgeId> bogus_dirty;  // missing the insertion
  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  const ScoreOrder patched(*next_scored, base_order, base_to_next,
                           bogus_dirty);
  EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before + 1);
  const ScoreOrder fresh(*next_scored);
  for (int64_t rank = 0; rank < fresh.size(); ++rank) {
    EXPECT_EQ(patched.id_at(rank), fresh.id_at(rank));
  }
}

TEST(DynamicScoreEdgesTest, MatchesStaticOverloadAtAnyGrain) {
  Rng rng(7);
  const Graph graph = BuildGraph(
      Directedness::kUndirected, 30,
      RandomEdges(rng, 30, 200, /*directed=*/false));
  const auto scorer = [&](EdgeId id, const Edge& e,
                          EdgeScore* out) -> Status {
    *out = EdgeScore{e.weight * static_cast<double>(id % 7), e.weight};
    return Status::OK();
  };
  const Result<std::vector<EdgeScore>> static_scores =
      ParallelScoreEdges(graph, 1, scorer);
  ASSERT_TRUE(static_scores.ok());
  for (const int threads : {1, 2, 8}) {
    for (const int64_t grain : {int64_t{1}, int64_t{3}, int64_t{1000}}) {
      const Result<std::vector<EdgeScore>> dynamic_scores =
          ParallelScoreEdges(graph, threads, grain, scorer);
      ASSERT_TRUE(dynamic_scores.ok());
      ASSERT_EQ(dynamic_scores->size(), static_scores->size());
      for (size_t i = 0; i < static_scores->size(); ++i) {
        EXPECT_EQ((*dynamic_scores)[i].score, (*static_scores)[i].score);
        EXPECT_EQ((*dynamic_scores)[i].sdev, (*static_scores)[i].sdev);
      }
    }
  }
}

TEST(DynamicScoreEdgesTest, LowestEdgeIdErrorWins) {
  Rng rng(11);
  const Graph graph = BuildGraph(
      Directedness::kUndirected, 20,
      RandomEdges(rng, 20, 120, /*directed=*/false));
  ASSERT_GE(graph.num_edges(), 30);
  const EdgeId first_bad = 17;
  const auto scorer = [&](EdgeId id, const Edge&,
                          EdgeScore* out) -> Status {
    if (id >= first_bad) {
      return Status::InvalidArgument("edge " + std::to_string(id));
    }
    *out = EdgeScore{1.0, 0.0};
    return Status::OK();
  };
  for (const int threads : {1, 2, 8}) {
    const Result<std::vector<EdgeScore>> scores =
        ParallelScoreEdges(graph, threads, /*grain=*/4, scorer);
    ASSERT_FALSE(scores.ok());
    EXPECT_EQ(scores.status().message(), "edge 17");
  }
}

TEST(DynamicScoreEdgesTest, SubsetWritesOnlyNamedSlots) {
  Rng rng(13);
  const Graph graph = BuildGraph(
      Directedness::kUndirected, 20,
      RandomEdges(rng, 20, 80, /*directed=*/false));
  ASSERT_GE(graph.num_edges(), 10);
  std::vector<EdgeScore> scores(static_cast<size_t>(graph.num_edges()),
                                EdgeScore{-1.0, -1.0});
  const std::vector<EdgeId> ids = {1, 4, 7};
  const Status status = ParallelScoreEdgeSubset(
      graph, ids, /*num_threads=*/2, /*grain=*/2,
      [](EdgeId, const Edge& e, EdgeScore* out) -> Status {
        *out = EdgeScore{e.weight, 0.0};
        return Status::OK();
      },
      &scores);
  ASSERT_TRUE(status.ok());
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const EdgeScore& s = scores[static_cast<size_t>(id)];
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
      EXPECT_EQ(s.score, graph.edge(id).weight);
      EXPECT_EQ(s.sdev, 0.0);
    } else {
      EXPECT_EQ(s.score, -1.0);  // untouched
    }
  }
}

}  // namespace
}  // namespace netbone
