// Tests for the crash-safe persistence layer: the XXH64 checksum, the
// ByteWriter/ByteReader primitives, the graph and scoring-artifact codecs
// (including ScoreOrder::FromPermutation's O(E) validation), snapshot
// write/restore round trips, the hard-failure taxonomy (bad magic,
// version skew, foreign endianness), a seeded corruption fuzz sweep —
// truncations and bit flips at random offsets must never crash, only
// quarantine — the engine-level warm-restart contract (bit-identical
// responses, zero rescores, zero sorts), and the three snapshot fault-
// injection sites (write failure, short read, kill-before-rename).

#include "service/snapshot.h"

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/random.h"
#include "common/serialize.h"
#include "core/registry.h"
#include "core/serialize.h"
#include "core/sweep.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/codec.h"
#include "graph/graph.h"
#include "service/engine.h"
#include "service/fault_injection.h"
#include "service/graph_store.h"
#include "service/score_cache.h"

namespace netbone {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<unsigned char> ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- XXH64

TEST(ChecksumTest, EmptyInputMatchesReferenceVector) {
  // The canonical XXH64 test vector: XXH64("", seed=0).
  EXPECT_EQ(Checksum64(nullptr, 0), 0xEF46DB3751D8E999ULL);
}

TEST(ChecksumTest, DeterministicAndSensitive) {
  std::vector<unsigned char> data(100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 7 + 3);
  }
  const uint64_t digest = Checksum64(data.data(), data.size());
  EXPECT_EQ(digest, Checksum64(data.data(), data.size()));

  // Any single flipped bit changes the digest — at every length class
  // (tail-only, one stripe, stripes + tail).
  for (const size_t len : {3UL, 8UL, 15UL, 32UL, 33UL, 100UL}) {
    const uint64_t base = Checksum64(data.data(), len);
    for (size_t i = 0; i < len; ++i) {
      data[i] ^= 0x01;
      EXPECT_NE(Checksum64(data.data(), len), base)
          << "flip at " << i << " len " << len;
      data[i] ^= 0x01;
    }
  }

  // The seed participates.
  EXPECT_NE(Checksum64(data.data(), data.size(), 1), digest);
}

// ---------------------------------------------------- ByteWriter/Reader

TEST(SerializeTest, ScalarAndVectorRoundTrip) {
  ByteWriter writer;
  writer.U32(7);
  writer.U64(0xDEADBEEFCAFEF00DULL);
  writer.I64(-42);
  writer.F64(3.5);
  writer.Str("netbone");
  writer.PodVec(std::vector<double>{1.0, -2.0, 0.25});

  ByteReader reader(writer.buffer().data(), writer.size());
  auto u32 = reader.U32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 7u);
  auto u64 = reader.U64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0xDEADBEEFCAFEF00DULL);
  auto i64 = reader.I64();
  ASSERT_TRUE(i64.ok());
  EXPECT_EQ(*i64, -42);
  auto f64 = reader.F64();
  ASSERT_TRUE(f64.ok());
  EXPECT_EQ(*f64, 3.5);
  auto str = reader.Str();
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(*str, "netbone");
  auto vec = reader.PodVec<double>();
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(*vec, (std::vector<double>{1.0, -2.0, 0.25}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerializeTest, UnderflowIsTypedCorruption) {
  ByteWriter writer;
  writer.U32(1);
  ByteReader reader(writer.buffer().data(), writer.size());
  auto u64 = reader.U64();  // asks for 8 bytes of the 4 present
  ASSERT_FALSE(u64.ok());
  EXPECT_EQ(u64.status().code(), Status::Code::kCorruption);

  // A hostile vector length cannot drive an allocation: count is
  // validated against the remaining bytes first.
  ByteWriter bad;
  bad.U64(uint64_t{1} << 60);  // "2^60 elements follow" — they do not
  ByteReader hostile(bad.buffer().data(), bad.size());
  auto vec = hostile.PodVec<double>();
  ASSERT_FALSE(vec.ok());
  EXPECT_EQ(vec.status().code(), Status::Code::kCorruption);
}

// ---------------------------------------------------------- graph codec

Graph SmallLabeledGraph() {
  GraphBuilder builder(Directedness::kUndirected,
                       DuplicateEdgePolicy::kSum, SelfLoopPolicy::kKeep);
  const NodeId a = builder.InternLabel("alpha");
  const NodeId b = builder.InternLabel("beta");
  const NodeId c = builder.InternLabel("gamma");
  builder.AddEdge(a, b, 2.0);
  builder.AddEdge(b, c, 1.5);
  builder.AddEdge(c, c, 0.5);  // self-loop survives the round trip
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return *std::move(graph);
}

TEST(GraphCodecTest, RoundTripPreservesFingerprint) {
  const auto er = GenerateErdosRenyi(
      {.num_nodes = 300, .average_degree = 4.0, .seed = 11});
  ASSERT_TRUE(er.ok());
  for (const Graph* graph :
       {&*er, static_cast<const Graph*>(nullptr)}) {
    const Graph source = graph != nullptr ? *graph : SmallLabeledGraph();
    ByteWriter writer;
    EncodeGraph(source, &writer);
    ByteReader reader(writer.buffer().data(), writer.size());
    auto decoded = DecodeGraph(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->num_nodes(), source.num_nodes());
    EXPECT_EQ(decoded->num_edges(), source.num_edges());
    EXPECT_EQ(GraphFingerprint(*decoded), GraphFingerprint(source));
  }
}

TEST(GraphCodecTest, EmptyAndDirectedGraphsRoundTrip) {
  GraphBuilder empty(Directedness::kUndirected);
  auto empty_graph = empty.Build();
  ASSERT_TRUE(empty_graph.ok());

  GraphBuilder directed(Directedness::kDirected);
  directed.ReserveNodes(4);
  directed.AddEdge(0, 1, 1.0);
  directed.AddEdge(1, 0, 2.0);  // both directions are distinct edges
  directed.AddEdge(2, 3, 4.0);
  auto directed_graph = directed.Build();
  ASSERT_TRUE(directed_graph.ok());

  for (const Graph* graph : {&*empty_graph, &*directed_graph}) {
    ByteWriter writer;
    EncodeGraph(*graph, &writer);
    ByteReader reader(writer.buffer().data(), writer.size());
    auto decoded = DecodeGraph(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(GraphFingerprint(*decoded), GraphFingerprint(*graph));
    EXPECT_EQ(decoded->directedness(), graph->directedness());
  }
}

TEST(GraphCodecTest, CorruptEndpointIsTypedCorruption) {
  const Graph graph = SmallLabeledGraph();
  ByteWriter writer;
  EncodeGraph(graph, &writer);
  // The edge table sits at the end; smash the final edge's bytes so an
  // endpoint leaves the node range.
  auto bytes = writer.TakeBuffer();
  bytes[bytes.size() - 16] = 0xFF;
  bytes[bytes.size() - 15] = 0xFF;
  bytes[bytes.size() - 14] = 0xFF;
  bytes[bytes.size() - 13] = 0x7F;
  ByteReader reader(bytes.data(), bytes.size());
  auto decoded = DecodeGraph(&reader);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), Status::Code::kCorruption);
}

// ---------------------------------------------------- artifact codecs

struct ScoredFixture {
  /// Heap-held so the ScoredEdges' internal graph pointer stays valid
  /// however the fixture moves.
  std::shared_ptr<Graph> graph;
  ScoredEdges scored;
};

ScoredFixture MakeScored() {
  auto graph = GenerateErdosRenyi(
      {.num_nodes = 200, .average_degree = 4.0, .seed = 21});
  EXPECT_TRUE(graph.ok());
  ScoredFixture fixture{std::make_shared<Graph>(*std::move(graph)), {}};
  auto scored = RunMethod(Method::kNoiseCorrected, *fixture.graph);
  EXPECT_TRUE(scored.ok());
  fixture.scored = *std::move(scored);
  return fixture;
}

TEST(ArtifactCodecTest, ScoredEdgesRoundTripIsBitwise) {
  const ScoredFixture fixture = MakeScored();
  ByteWriter writer;
  EncodeScoredEdges(fixture.scored, &writer);
  ByteReader reader(writer.buffer().data(), writer.size());
  auto decoded = DecodeScoredEdges(&reader, fixture.graph.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->method(), fixture.scored.method());
  EXPECT_EQ(decoded->has_sdev(), fixture.scored.has_sdev());
  ASSERT_EQ(decoded->size(), fixture.scored.size());
  for (int64_t i = 0; i < decoded->size(); ++i) {
    EXPECT_EQ(decoded->at(i).score, fixture.scored.at(i).score);
    EXPECT_EQ(decoded->at(i).sdev, fixture.scored.at(i).sdev);
  }
}

TEST(ArtifactCodecTest, ScoreOrderRoundTripPerformsNoSort) {
  const ScoredFixture fixture = MakeScored();
  const ScoreOrder order(fixture.scored);  // the one counted sort
  ByteWriter writer;
  EncodeScoreOrder(order, &writer);

  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  ByteReader reader(writer.buffer().data(), writer.size());
  auto decoded = DecodeScoreOrder(&reader, fixture.scored);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before);
  ASSERT_EQ(decoded->size(), order.size());
  for (int64_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(decoded->id_at(i), order.id_at(i));
  }
}

TEST(ArtifactCodecTest, SweepProfileRoundTrip) {
  const ScoredFixture fixture = MakeScored();
  const ScoreOrder order(fixture.scored);
  const SweepProfile profile = BuildSweepProfile(order);
  ByteWriter writer;
  EncodeSweepProfile(profile, &writer);
  ByteReader reader(writer.buffer().data(), writer.size());
  auto decoded = DecodeSweepProfile(&reader, fixture.graph->num_edges(),
                                    fixture.graph->num_nodes());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->covered_nodes, profile.covered_nodes);
  EXPECT_EQ(decoded->kept_weight, profile.kept_weight);
  EXPECT_EQ(decoded->target_nodes, profile.target_nodes);
  EXPECT_EQ(decoded->connect_k, profile.connect_k);
}

TEST(ArtifactCodecTest, FromPermutationRejectsHostileCandidates) {
  const ScoredFixture fixture = MakeScored();
  const ScoreOrder order(fixture.scored);
  const std::vector<EdgeId> good(order.ids().begin(), order.ids().end());

  // Wrong length.
  std::vector<EdgeId> short_ids(good.begin(), good.end() - 1);
  EXPECT_FALSE(ScoreOrder::FromPermutation(fixture.scored,
                                           std::move(short_ids)).ok());

  // Not a permutation: duplicate entry.
  std::vector<EdgeId> dup = good;
  dup[1] = dup[0];
  EXPECT_FALSE(ScoreOrder::FromPermutation(fixture.scored,
                                           std::move(dup)).ok());

  // Out-of-range id.
  std::vector<EdgeId> range = good;
  range[0] = static_cast<EdgeId>(fixture.scored.size());
  EXPECT_FALSE(ScoreOrder::FromPermutation(fixture.scored,
                                           std::move(range)).ok());

  // A permutation in the wrong order: swap two adjacent, differently
  // scored entries (adjacent equal scores would still compare fine, so
  // find a strict descent first).
  for (size_t i = 1; i < good.size(); ++i) {
    if (fixture.scored.at(good[i - 1]).score !=
        fixture.scored.at(good[i]).score) {
      std::vector<EdgeId> swapped = good;
      std::swap(swapped[i - 1], swapped[i]);
      auto result =
          ScoreOrder::FromPermutation(fixture.scored, std::move(swapped));
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
      break;
    }
  }

  // And the genuine permutation is adopted without a sort.
  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  auto adopted = ScoreOrder::FromPermutation(fixture.scored, good);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before);
}

// ------------------------------------------------------- snapshot layer

/// A populated engine state on disk: three methods scored against one
/// graph, snapshotted into `dir`. Returns the trace's fingerprints.
uint64_t PopulateSnapshot(const std::string& dir, int num_nodes = 150) {
  BackboneEngineOptions options;
  options.snapshot_dir = dir;
  options.snapshot_on_shutdown = false;
  BackboneEngine engine(options);
  auto graph = GenerateErdosRenyi(
      {.num_nodes = num_nodes, .average_degree = 3.0, .seed = 5});
  EXPECT_TRUE(graph.ok());
  const uint64_t fingerprint = engine.AddGraph(*std::move(graph));
  for (const Method method : {Method::kNoiseCorrected,
                              Method::kDisparityFilter,
                              Method::kNaiveThreshold}) {
    BackboneRequest request;
    request.graph = fingerprint;
    request.method = method;
    request.kind = RequestKind::kTopShare;
    request.share = 0.3;
    EXPECT_TRUE(engine.Execute(request).ok());
  }
  EXPECT_TRUE(engine.WriteSnapshotNow().ok());
  return fingerprint;
}

TEST(SnapshotTest, WriteRestoreRoundTrip) {
  const std::string dir = TempPath("snapshot_roundtrip");
  fs::create_directories(dir);
  PopulateSnapshot(dir);

  GraphStore store;
  ScoreCache cache(0);
  auto report = RestoreSnapshot(SnapshotFilePath(dir), &store, &cache);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->committed);
  EXPECT_EQ(report->graphs_restored, 1);
  EXPECT_EQ(report->entries_restored, 3);
  EXPECT_EQ(report->sections_quarantined, 0);
  EXPECT_TRUE(report->first_error.ok());
  EXPECT_EQ(store.stats().graphs, 1);
  fs::remove_all(dir);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  GraphStore store;
  ScoreCache cache(0);
  auto report = RestoreSnapshot(TempPath("no_such_snapshot_dir/nope"),
                                &store, &cache);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), Status::Code::kNotFound);
}

TEST(SnapshotTest, HardFailureTaxonomy) {
  const std::string dir = TempPath("snapshot_taxonomy");
  fs::create_directories(dir);
  PopulateSnapshot(dir);
  const std::string path = SnapshotFilePath(dir);
  const std::vector<unsigned char> pristine = ReadBytes(path);
  ASSERT_GT(pristine.size(), 24u);

  GraphStore store;
  ScoreCache cache(0);

  // Too short to hold a file header.
  WriteBytes(path, {0x01, 0x02, 0x03});
  auto tiny = RestoreSnapshot(path, &store, &cache);
  ASSERT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.status().code(), Status::Code::kCorruption);

  // Wrong magic.
  std::vector<unsigned char> bad_magic = pristine;
  bad_magic[0] ^= 0xFF;
  WriteBytes(path, bad_magic);
  auto magic = RestoreSnapshot(path, &store, &cache);
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.status().code(), Status::Code::kCorruption);

  // Version from the future.
  std::vector<unsigned char> future = pristine;
  future[8] = 0x63;  // version u32 little-endian at offset 8
  WriteBytes(path, future);
  auto version = RestoreSnapshot(path, &store, &cache);
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.status().code(), Status::Code::kNotSupported);

  // Foreign endianness: byteswap the endian tag AND the magic, the way a
  // big-endian writer would have laid them out.
  std::vector<unsigned char> swapped = pristine;
  for (const size_t base : {0UL, 16UL}) {
    for (size_t i = 0; i < 4; ++i) {
      std::swap(swapped[base + i], swapped[base + 7 - i]);
    }
  }
  WriteBytes(path, swapped);
  auto endian = RestoreSnapshot(path, &store, &cache);
  ASSERT_FALSE(endian.ok());
  EXPECT_EQ(endian.status().code(), Status::Code::kNotSupported);

  fs::remove_all(dir);
}

TEST(SnapshotTest, TornWriteSalvagesPrefixUncommitted) {
  const std::string dir = TempPath("snapshot_torn");
  fs::create_directories(dir);
  PopulateSnapshot(dir);
  const std::string path = SnapshotFilePath(dir);
  const std::vector<unsigned char> pristine = ReadBytes(path);

  // Drop the last 40% — the footer is gone, some sections survive.
  std::vector<unsigned char> torn(
      pristine.begin(),
      pristine.begin() + static_cast<ptrdiff_t>(pristine.size() * 6 / 10));
  WriteBytes(path, torn);

  GraphStore store;
  ScoreCache cache(0);
  auto report = RestoreSnapshot(path, &store, &cache);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_FALSE(report->committed);
  EXPECT_FALSE(report->first_error.ok());
  EXPECT_LT(report->entries_restored, 3);
  fs::remove_all(dir);
}

TEST(SnapshotTest, SeededCorruptionFuzzNeverCrashes) {
  const std::string dir = TempPath("snapshot_fuzz");
  fs::create_directories(dir);
  PopulateSnapshot(dir);
  const std::string path = SnapshotFilePath(dir);
  const std::vector<unsigned char> pristine = ReadBytes(path);
  ASSERT_GT(pristine.size(), 64u);

  // Reference restore: what an undamaged snapshot yields.
  int64_t full_entries = 0;
  {
    GraphStore store;
    ScoreCache cache(0);
    auto report = RestoreSnapshot(path, &store, &cache);
    ASSERT_TRUE(report.ok());
    full_entries = report->entries_restored;
  }

  Rng rng(0xC0FFEE);
  int salvages = 0;
  int hard_failures = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<unsigned char> bytes = pristine;
    if (trial == 0) {
      bytes.resize(10);  // deterministic: shorter than the file header
    } else if (trial == 1) {
      bytes[3] ^= 0x10;  // deterministic: magic damage, hard Corruption
    } else if (trial % 2 == 0) {
      // Truncation to a random length (may cut anywhere, header included).
      bytes.resize(rng.NextBounded(bytes.size()));
    } else {
      // 1-3 random bit flips.
      const uint64_t flips = 1 + rng.NextBounded(3);
      for (uint64_t f = 0; f < flips; ++f) {
        const size_t offset = rng.NextBounded(bytes.size());
        bytes[offset] ^= static_cast<unsigned char>(
            1u << rng.NextBounded(8));
      }
    }
    WriteBytes(path, bytes);

    GraphStore store;
    ScoreCache cache(0);
    // The one non-negotiable property: this call RETURNS, with either a
    // typed hard failure or a salvage report. Crashing fails the test by
    // not getting here.
    auto report = RestoreSnapshot(path, &store, &cache);
    if (!report.ok()) {
      ++hard_failures;
      const Status::Code code = report.status().code();
      EXPECT_TRUE(code == Status::Code::kCorruption ||
                  code == Status::Code::kNotSupported ||
                  code == Status::Code::kNotFound ||
                  code == Status::Code::kIOError)
          << "untyped hard failure: " << report.status().message();
      continue;
    }
    ++salvages;
    EXPECT_LE(report->entries_restored, full_entries);
    // Whatever was salvaged must be intact enough to enumerate.
    EXPECT_EQ(static_cast<int64_t>(cache.Entries().size()),
              report->entries_restored);
  }
  // The sweep must have exercised both regimes.
  EXPECT_GT(salvages, 0);
  EXPECT_GT(hard_failures, 0);
  fs::remove_all(dir);
}

// ------------------------------------------------- engine warm restart

TEST(WarmRestartTest, BitIdenticalZeroRescoreZeroSort) {
  const std::string dir = TempPath("warm_restart");
  fs::create_directories(dir);

  auto graph = GenerateErdosRenyi(
      {.num_nodes = 250, .average_degree = 3.0, .seed = 31});
  ASSERT_TRUE(graph.ok());

  std::vector<BackboneRequest> trace;
  for (const Method method : {Method::kNoiseCorrected,
                              Method::kDisparityFilter}) {
    BackboneRequest share;
    share.method = method;
    share.kind = RequestKind::kTopShare;
    share.share = 0.25;
    trace.push_back(share);
    BackboneRequest sweep = share;
    sweep.kind = RequestKind::kSweep;
    sweep.shares = {0.1, 0.5, 0.9};
    trace.push_back(sweep);
  }

  std::vector<BackboneResponse> reference;
  {
    BackboneEngineOptions options;
    options.snapshot_dir = dir;  // shutdown snapshot path: on by default
    BackboneEngine engine(options);
    const uint64_t fingerprint = engine.AddGraph(*graph);
    for (BackboneRequest request : trace) {
      request.graph = fingerprint;
      auto response = engine.Execute(request);
      ASSERT_TRUE(response.ok());
      reference.push_back(*std::move(response));
    }
  }  // destructor writes the snapshot

  BackboneEngineOptions options;
  options.snapshot_dir = dir;
  options.snapshot_on_shutdown = false;
  BackboneEngine restarted(options);
  const auto stats = restarted.stats();
  EXPECT_EQ(stats.restored_graphs, 1);
  EXPECT_EQ(stats.restored_entries, 2);
  EXPECT_EQ(stats.quarantined_sections, 0);

  const uint64_t fingerprint = GraphFingerprint(*graph);
  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  for (size_t i = 0; i < trace.size(); ++i) {
    BackboneRequest request = trace[i];
    request.graph = fingerprint;
    auto response = restarted.Execute(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->cache_hit);
    EXPECT_EQ(response->kept_edges, reference[i].kept_edges);
    EXPECT_EQ(response->kept, reference[i].kept);
    EXPECT_EQ(response->coverage, reference[i].coverage);
    EXPECT_EQ(response->weight_share, reference[i].weight_share);
    EXPECT_EQ(response->sweep, reference[i].sweep);
    EXPECT_EQ(response->connect_k, reference[i].connect_k);
  }
  EXPECT_EQ(restarted.stats().scores_computed, 0);
  EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before);
  fs::remove_all(dir);
}

// ------------------------------------------------ fault-injection sites

TEST(SnapshotFaultTest, InjectedWriteFailureLeavesOldSnapshotIntact) {
  const std::string dir = TempPath("snapshot_write_fault");
  fs::create_directories(dir);
  PopulateSnapshot(dir);
  const std::string path = SnapshotFilePath(dir);
  const std::vector<unsigned char> pristine = ReadBytes(path);

  FaultInjector injector(0xABCD);
  injector.Configure(FaultSite::kSnapshotWriteFailure,
                     {.probability = 1.0});
  ScopedFaultInjection scope(&injector);

  GraphStore store;
  ScoreCache cache(0);
  auto wrote = WriteSnapshot(path, store, cache);
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.status().code(), Status::Code::kIOError);
  EXPECT_EQ(ReadBytes(path), pristine);  // bit-for-bit untouched
  fs::remove_all(dir);
}

TEST(SnapshotFaultTest, KillBeforeRenameLeavesOldSnapshotCommitted) {
  const std::string dir = TempPath("snapshot_rename_fault");
  fs::create_directories(dir);
  PopulateSnapshot(dir);
  const std::string path = SnapshotFilePath(dir);
  const std::vector<unsigned char> pristine = ReadBytes(path);

  FaultInjector injector(0xABCE);
  injector.Configure(FaultSite::kSnapshotRenameKill, {.probability = 1.0});
  ScopedFaultInjection scope(&injector);

  GraphStore store;
  ScoreCache cache(0);
  auto wrote = WriteSnapshot(path, store, cache);
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.status().code(), Status::Code::kIOError);
  // The committed snapshot is the old one, bit-for-bit; the orphaned
  // temp file is the expected crash debris.
  EXPECT_EQ(ReadBytes(path), pristine);
  EXPECT_TRUE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(SnapshotFaultTest, InjectedShortReadSalvagesWithoutCrashing) {
  const std::string dir = TempPath("snapshot_short_read");
  fs::create_directories(dir);
  PopulateSnapshot(dir);

  FaultInjector injector(0xABCF);
  injector.Configure(FaultSite::kSnapshotShortRead, {.probability = 1.0});
  ScopedFaultInjection scope(&injector);

  GraphStore store;
  ScoreCache cache(0);
  auto report = RestoreSnapshot(SnapshotFilePath(dir), &store, &cache);
  // Half the file: either a salvage report (torn prefix) or a typed hard
  // failure; never a crash.
  if (report.ok()) {
    EXPECT_FALSE(report->committed);
    EXPECT_LT(report->entries_restored, 3);
  } else {
    EXPECT_EQ(report.status().code(), Status::Code::kCorruption);
  }
  EXPECT_EQ(injector.injected(FaultSite::kSnapshotShortRead), 1);
  fs::remove_all(dir);
}

TEST(SnapshotFaultTest, EngineCountsInjectedSnapshotFailures) {
  const std::string dir = TempPath("snapshot_engine_fault");
  fs::create_directories(dir);

  FaultInjector injector(0xABD0);
  injector.Configure(FaultSite::kSnapshotWriteFailure,
                     {.probability = 1.0});
  ScopedFaultInjection scope(&injector);

  BackboneEngineOptions options;
  options.snapshot_dir = dir;
  options.snapshot_on_shutdown = false;
  BackboneEngine engine(options);
  EXPECT_FALSE(engine.WriteSnapshotNow().ok());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.snapshot_writes, 0);
  EXPECT_EQ(stats.snapshot_failures, 1);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace netbone
