// Tests for edge-list CSV input/output (compatible with the Python
// backboning module's src/trg/nij format).

#include "graph/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace netbone {
namespace {

TEST(IoTest, ParsesTabSeparatedWithHeader) {
  const std::string csv =
      "src\ttrg\tnij\n"
      "USA\tDEU\t12.5\n"
      "DEU\tJPN\t3\n";
  const auto g = ReadEdgeListCsvFromString(csv);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_TRUE(g->directed());
  EXPECT_DOUBLE_EQ(
      g->WeightOf(*g->FindLabel("USA"), *g->FindLabel("DEU")), 12.5);
}

TEST(IoTest, ParsesCommaSeparatedUndirected) {
  EdgeListReadOptions options;
  options.separator = ',';
  options.directedness = Directedness::kUndirected;
  const auto g = ReadEdgeListCsvFromString(
      "src,trg,nij\nB,A,2\nC,A,3\n", options);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->directed());
  EXPECT_DOUBLE_EQ(g->WeightOf(*g->FindLabel("A"), *g->FindLabel("B")),
                   2.0);
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  const auto g = ReadEdgeListCsvFromString(
      "src\ttrg\tnij\n# comment\n\nA\tB\t1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
}

TEST(IoTest, NoHeaderOption) {
  EdgeListReadOptions options;
  options.has_header = false;
  const auto g = ReadEdgeListCsvFromString("A\tB\t1\nB\tC\t2\n", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(IoTest, SelfLoopsDroppedByDefault) {
  const auto g = ReadEdgeListCsvFromString(
      "src\ttrg\tnij\nA\tA\t5\nA\tB\t1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
}

TEST(IoTest, SelfLoopsKeptOnRequest) {
  EdgeListReadOptions options;
  options.keep_self_loops = true;
  const auto g = ReadEdgeListCsvFromString(
      "src\ttrg\tnij\nA\tA\t5\nA\tB\t1\n", options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(IoTest, DuplicateRowsAccumulateByDefault) {
  const auto g = ReadEdgeListCsvFromString(
      "src\ttrg\tnij\nA\tB\t1\nA\tB\t2\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_DOUBLE_EQ(g->edge(0).weight, 3.0);
}

TEST(IoTest, RejectsMalformedRows) {
  EXPECT_FALSE(ReadEdgeListCsvFromString("src\ttrg\tnij\nA\tB\n").ok());
  EXPECT_FALSE(
      ReadEdgeListCsvFromString("src\ttrg\tnij\nA\tB\tnotanumber\n").ok());
  EXPECT_FALSE(ReadEdgeListCsvFromString("src\ttrg\tnij\nA\tB\t-3\n").ok());
}

TEST(IoTest, MissingFileIsIOError) {
  const auto g = ReadEdgeListCsv("/nonexistent/path/to/edges.csv");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

TEST(IoTest, RoundTripsThroughString) {
  const std::string csv =
      "src\ttrg\tnij\n"
      "A\tB\t1.5\n"
      "B\tC\t2\n"
      "C\tA\t0.25\n";
  const auto g = ReadEdgeListCsvFromString(csv);
  ASSERT_TRUE(g.ok());
  const std::string serialized = EdgeListToString(*g);
  const auto reparsed = ReadEdgeListCsvFromString(serialized);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_edges(), g->num_edges());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_EQ(reparsed->edge(id).src, g->edge(id).src);
    EXPECT_DOUBLE_EQ(reparsed->edge(id).weight, g->edge(id).weight);
  }
}

TEST(IoTest, RoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/netbone_io_test.tsv";
  const auto g = ReadEdgeListCsvFromString(
      "src\ttrg\tnij\nX\tY\t7\nY\tZ\t8\n");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteEdgeListCsv(*g, path).ok());
  const auto reloaded = ReadEdgeListCsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_edges(), 2);
  EXPECT_DOUBLE_EQ(
      reloaded->WeightOf(*reloaded->FindLabel("X"),
                         *reloaded->FindLabel("Y")),
      7.0);
  std::remove(path.c_str());
}

TEST(IoTest, WriteFailsOnBadPath) {
  const auto g = ReadEdgeListCsvFromString("src\ttrg\tnij\nA\tB\t1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(
      WriteEdgeListCsv(*g, "/nonexistent/dir/out.tsv").IsIOError());
}

}  // namespace
}  // namespace netbone
