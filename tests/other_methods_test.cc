// Tests for the remaining extraction methods: High Salience Skeleton,
// Doubly Stochastic, Maximum Spanning Tree, Naive threshold, k-core, and
// the method registry.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/doubly_stochastic.h"
#include "core/filter.h"
#include "core/high_salience_skeleton.h"
#include "core/kcore.h"
#include "core/maximum_spanning_tree.h"
#include "core/naive.h"
#include "core/registry.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/components.h"

namespace netbone {
namespace {

// ---------------------------------------------------------------------------
// High Salience Skeleton.
// ---------------------------------------------------------------------------

TEST(HssTest, PathGraphEdgesAreFullySalient) {
  // On a path every shortest-path tree contains every edge: salience 1.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph g = *builder.Build();
  const auto hss = HighSalienceSkeleton(g);
  ASSERT_TRUE(hss.ok());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_DOUBLE_EQ(hss->at(id).score, 1.0);
  }
}

TEST(HssTest, SalienceIsInUnitInterval) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 60, .average_degree = 6.0, .seed = 3});
  ASSERT_TRUE(g.ok());
  const auto hss = HighSalienceSkeleton(*g);
  ASSERT_TRUE(hss.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_GE(hss->at(id).score, 0.0);
    EXPECT_LE(hss->at(id).score, 1.0);
  }
}

TEST(HssTest, StrongDetourBeatsWeakDirectEdge) {
  // Triangle where the direct 0-2 edge is weak (length 1/w large) and the
  // detour through 1 is strong: the direct edge joins no SPT.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(1, 2, 10.0);
  builder.AddEdge(0, 2, 1.0);  // length 1.0 vs detour 0.2
  const Graph g = *builder.Build();
  const auto hss = HighSalienceSkeleton(g);
  ASSERT_TRUE(hss.ok());
  EXPECT_DOUBLE_EQ(hss->at(g.FindEdge(0, 2)).score, 0.0);
  EXPECT_DOUBLE_EQ(hss->at(g.FindEdge(0, 1)).score, 1.0);
  EXPECT_DOUBLE_EQ(hss->at(g.FindEdge(1, 2)).score, 1.0);
}

TEST(HssTest, DeterministicAcrossThreadCounts) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 80, .average_degree = 5.0, .seed = 11});
  ASSERT_TRUE(g.ok());
  HighSalienceSkeletonOptions one_thread;
  one_thread.num_threads = 1;
  HighSalienceSkeletonOptions four_threads;
  four_threads.num_threads = 4;
  const auto a = HighSalienceSkeleton(*g, one_thread);
  const auto b = HighSalienceSkeleton(*g, four_threads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_DOUBLE_EQ(a->at(id).score, b->at(id).score);
  }
}

TEST(HssTest, CostGuardRejectsLargeInputs) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 100, .average_degree = 4.0, .seed = 1});
  ASSERT_TRUE(g.ok());
  HighSalienceSkeletonOptions options;
  options.max_cost = 10;  // absurdly small budget
  const auto hss = HighSalienceSkeleton(*g, options);
  ASSERT_FALSE(hss.ok());
  EXPECT_TRUE(hss.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Doubly Stochastic.
// ---------------------------------------------------------------------------

TEST(DoublyStochasticTest, BalancesACompleteDirectedGraph) {
  GraphBuilder builder(Directedness::kDirected);
  const NodeId n = 6;
  double w = 1.0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      builder.AddEdge(i, j, w);
      w += 0.7;
    }
  }
  const Graph g = *builder.Build();
  const auto ds = DoublyStochastic(g);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  // Row and column sums of the balanced matrix must be ~1.
  std::vector<double> row(n, 0.0), col(n, 0.0);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    row[static_cast<size_t>(e.src)] += ds->at(id).score;
    col[static_cast<size_t>(e.dst)] += ds->at(id).score;
  }
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(row[static_cast<size_t>(v)], 1.0, 1e-6);
    EXPECT_NEAR(col[static_cast<size_t>(v)], 1.0, 1e-6);
  }
}

TEST(DoublyStochasticTest, FailsWhenNodeHasOnlyOutEdges) {
  // Paper: "it is not always possible to transform any arbitrary square
  // matrix into a doubly-stochastic one" — reported as n/a.
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 1, 1.0);  // node 0 never receives
  const auto ds = DoublyStochastic(*builder.Build());
  ASSERT_FALSE(ds.ok());
  EXPECT_TRUE(ds.status().IsFailedPrecondition());
}

TEST(DoublyStochasticTest, UndirectedSymmetricMatrixBalances) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 4.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 0, 1.0);
  builder.AddEdge(0, 3, 3.0);
  builder.AddEdge(1, 3, 1.0);
  builder.AddEdge(2, 3, 5.0);
  const Graph g = *builder.Build();
  const auto ds = DoublyStochastic(g);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_GT(ds->at(id).score, 0.0);
  }
}

TEST(DoublyStochasticTest, NormalizationReordersEdges) {
  // The DS transform promotes edges that are large *relative to their row
  // and column*: a hub's absolutely-large edge can fall below a weak
  // node pair's mutually-exclusive link.
  GraphBuilder builder(Directedness::kDirected);
  // Hub 0 sends 10 to everyone; nodes 1 and 2 exchange tiny flows.
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(0, 2, 10.0);
  builder.AddEdge(0, 3, 10.0);
  builder.AddEdge(1, 0, 10.0);
  builder.AddEdge(2, 0, 10.0);
  builder.AddEdge(3, 0, 10.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 3, 1.0);
  builder.AddEdge(3, 1, 1.0);
  builder.AddEdge(2, 1, 1.0);
  builder.AddEdge(3, 2, 1.0);
  builder.AddEdge(1, 3, 1.0);
  const Graph g = *builder.Build();
  const auto ds = DoublyStochastic(g);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  // Normalized weight of 1->2 should approach the hub edges' share.
  EXPECT_GT(ds->at(g.FindEdge(1, 2)).score, 0.1);
}

// ---------------------------------------------------------------------------
// Maximum Spanning Tree.
// ---------------------------------------------------------------------------

TEST(MstTest, SelectsMaximumTreeOnSmallGraph) {
  // Square with one diagonal; the tree must keep the three heaviest edges
  // that do not close a cycle.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(1, 2, 9.0);
  builder.AddEdge(2, 3, 8.0);
  builder.AddEdge(3, 0, 1.0);
  builder.AddEdge(0, 2, 2.0);
  const Graph g = *builder.Build();
  const auto mst = MaximumSpanningTree(g);
  ASSERT_TRUE(mst.ok());
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(0, 1)).score, 1.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(1, 2)).score, 1.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(2, 3)).score, 1.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(3, 0)).score, 0.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(0, 2)).score, 0.0);
  EXPECT_DOUBLE_EQ(SpanningTreeWeight(g, *mst), 27.0);
}

TEST(MstTest, TreeHasExactlyNMinusOneEdgesWhenConnected) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 50, .average_degree = 8.0, .seed = 5});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(IsConnected(*g));
  const auto mst = MaximumSpanningTree(*g);
  ASSERT_TRUE(mst.ok());
  const BackboneMask mask = FilterByScore(*mst, 0.5);
  EXPECT_EQ(mask.kept, g->num_nodes() - 1);
  // The masked subgraph must itself be connected (a spanning tree).
  const auto tree = ApplyMask(*g, mask);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(IsConnected(*tree));
}

TEST(MstTest, BeatsAnyOtherSpanningSelection) {
  // Spot-check optimality: random spanning selections of the same size
  // never exceed the MST weight.
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 12, .average_degree = 5.0, .seed = 9});
  ASSERT_TRUE(g.ok());
  const auto mst = MaximumSpanningTree(*g);
  ASSERT_TRUE(mst.ok());
  const double best = SpanningTreeWeight(*g, *mst);
  // Greedy-min alternative (Kruskal ascending) is a spanning tree too and
  // must be no heavier.
  GraphBuilder inverted_builder(Directedness::kUndirected);
  inverted_builder.ReserveNodes(g->num_nodes());
  for (const Edge& e : g->edges()) {
    inverted_builder.AddEdge(e.src, e.dst, 1e6 - e.weight);
  }
  const Graph inverted = *inverted_builder.Build();
  const auto min_tree = MaximumSpanningTree(inverted);
  ASSERT_TRUE(min_tree.ok());
  double min_tree_weight_in_original = 0.0;
  for (EdgeId id = 0; id < inverted.num_edges(); ++id) {
    if (min_tree->at(id).score > 0.0) {
      const Edge& e = inverted.edge(id);
      min_tree_weight_in_original += g->WeightOf(e.src, e.dst);
    }
  }
  EXPECT_GE(best, min_tree_weight_in_original);
}

TEST(MstTest, DisconnectedGraphYieldsSpanningForest) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(0, 2, 1.0);
  builder.AddEdge(3, 4, 5.0);  // separate component
  const Graph g = *builder.Build();
  const auto mst = MaximumSpanningTree(g);
  ASSERT_TRUE(mst.ok());
  const BackboneMask mask = FilterByScore(*mst, 0.5);
  EXPECT_EQ(mask.kept, 3);  // (3-1) + (2-1)
}

TEST(MstTest, DirectedPairsAreAdmittedTogether) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 5.0);
  builder.AddEdge(1, 0, 4.0);
  builder.AddEdge(1, 2, 3.0);
  builder.AddEdge(2, 0, 1.0);
  const Graph g = *builder.Build();
  const auto mst = MaximumSpanningTree(g);
  ASSERT_TRUE(mst.ok());
  // Pair {0,1} (combined weight 9) and pair {1,2} span the graph.
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(0, 1)).score, 1.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(1, 0)).score, 1.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(1, 2)).score, 1.0);
  EXPECT_DOUBLE_EQ(mst->at(g.FindEdge(2, 0)).score, 0.0);
}

// ---------------------------------------------------------------------------
// Naive threshold.
// ---------------------------------------------------------------------------

TEST(NaiveTest, ScoreEqualsWeight) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 3.5);
  builder.AddEdge(1, 2, 0.25);
  const Graph g = *builder.Build();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_DOUBLE_EQ(nt->at(id).score, g.edge(id).weight);
  }
}

TEST(NaiveTest, ThresholdDropsLightEdges) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 3.0);
  const Graph g = *builder.Build();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  EXPECT_EQ(FilterByScore(*nt, 1.5).kept, 2);
  EXPECT_EQ(FilterByScore(*nt, 2.5).kept, 1);
  EXPECT_EQ(FilterByScore(*nt, 3.0).kept, 0);  // strict inequality
}

// ---------------------------------------------------------------------------
// k-core.
// ---------------------------------------------------------------------------

TEST(KCoreTest, CliquePlusTailCoreNumbers) {
  // 4-clique (core 3) with a pendant path (core 1).
  GraphBuilder builder(Directedness::kUndirected);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) builder.AddEdge(i, j, 1.0);
  }
  builder.AddEdge(3, 4, 1.0);
  builder.AddEdge(4, 5, 1.0);
  const Graph g = *builder.Build();
  const auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3);
  EXPECT_EQ(core[1], 3);
  EXPECT_EQ(core[2], 3);
  EXPECT_EQ(core[3], 3);
  EXPECT_EQ(core[4], 1);
  EXPECT_EQ(core[5], 1);
}

TEST(KCoreTest, SubgraphKeepsOnlyTheCore) {
  GraphBuilder builder(Directedness::kUndirected);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) builder.AddEdge(i, j, 1.0);
  }
  builder.AddEdge(4, 5, 1.0);
  const Graph g = *builder.Build();
  const auto core3 = KCoreSubgraph(g, 3);
  ASSERT_TRUE(core3.ok());
  EXPECT_EQ(core3->num_edges(), 10);  // the 5-clique
  const auto core5 = KCoreSubgraph(g, 5);
  ASSERT_TRUE(core5.ok());
  EXPECT_EQ(core5->num_edges(), 0);
}

TEST(KCoreTest, EdgeScoreIsMinEndpointCore) {
  GraphBuilder builder(Directedness::kUndirected);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) builder.AddEdge(i, j, 1.0);
  }
  builder.AddEdge(0, 4, 1.0);
  const Graph g = *builder.Build();
  const auto scores = KCoreScores(g);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->at(g.FindEdge(0, 4)).score, 1.0);
  EXPECT_DOUBLE_EQ(scores->at(g.FindEdge(0, 1)).score, 3.0);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(RegistryTest, NamesAndTagsAreStable) {
  EXPECT_EQ(MethodName(Method::kNoiseCorrected), "noise_corrected");
  EXPECT_EQ(MethodTag(Method::kNoiseCorrected), "NC");
  EXPECT_EQ(MethodTag(Method::kDisparityFilter), "DF");
  EXPECT_EQ(MethodTag(Method::kHighSalienceSkeleton), "HSS");
  EXPECT_EQ(MethodTag(Method::kDoublyStochastic), "DS");
  EXPECT_EQ(MethodTag(Method::kMaximumSpanningTree), "MST");
  EXPECT_EQ(MethodTag(Method::kNaiveThreshold), "NT");
}

TEST(RegistryTest, PaperMethodsExcludeKCore) {
  EXPECT_EQ(PaperMethods().size(), 6u);
  EXPECT_EQ(AllMethods().size(), 7u);
  for (const Method m : PaperMethods()) {
    EXPECT_NE(m, Method::kKCore);
  }
}

TEST(RegistryTest, RunMethodDispatchesEveryMethod) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 30, .average_degree = 6.0, .seed = 2});
  ASSERT_TRUE(g.ok());
  for (const Method m : AllMethods()) {
    const auto scored = RunMethod(m, *g);
    ASSERT_TRUE(scored.ok()) << MethodName(m) << ": "
                             << scored.status().ToString();
    EXPECT_EQ(scored->size(), g->num_edges()) << MethodName(m);
    EXPECT_EQ(scored->method().empty(), false);
  }
}

TEST(RegistryTest, ParameterFreeFlags) {
  EXPECT_TRUE(IsParameterFree(Method::kMaximumSpanningTree));
  EXPECT_TRUE(IsParameterFree(Method::kDoublyStochastic));
  EXPECT_FALSE(IsParameterFree(Method::kNoiseCorrected));
  EXPECT_FALSE(IsParameterFree(Method::kNaiveThreshold));
}

}  // namespace
}  // namespace netbone
