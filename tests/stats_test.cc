// Tests for descriptive statistics, ranking, and the correlation measures
// backing Table I (Pearson), Fig. 6 (log-log) and Fig. 8 (Spearman).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/ranking.h"

namespace netbone {
namespace {

TEST(DescriptiveTest, MeanAndVariance) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 4.0);
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  const std::vector<double> empty;
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance(one), 0.0);
  EXPECT_DOUBLE_EQ(Median(empty), 0.0);
  EXPECT_DOUBLE_EQ(Median(one), 42.0);
}

TEST(DescriptiveTest, MedianAndQuantiles) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
}

TEST(DescriptiveTest, KahanSumHandlesWideMagnitudes) {
  // 1e16 + 1 + 1 + ... naive summation drops the ones.
  std::vector<double> v = {1e16};
  for (int i = 0; i < 1000; ++i) v.push_back(1.0);
  EXPECT_DOUBLE_EQ(Sum(v), 1e16 + 1000.0);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(RankingTest, DistinctValues) {
  const std::vector<double> v = {10.0, 30.0, 20.0};
  const auto r = MidRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(RankingTest, TiesGetMidranks) {
  const std::vector<double> v = {5.0, 5.0, 1.0, 7.0, 5.0};
  const auto r = MidRanks(v);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 5.0);
  // Three fives straddle ranks 2, 3, 4 -> midrank 3.
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[4], 3.0);
}

TEST(PearsonTest, PerfectAndAntiCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(*PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(*PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computed on a small series.
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  // cov = 2.0 (sum dx dy = 8, n=5 -> population cov 1.6); r = 0.8.
  EXPECT_NEAR(*PearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(PearsonTest, ErrorCases) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y3 = {1.0, 2.0, 3.0};
  const std::vector<double> constant = {5.0, 5.0};
  EXPECT_FALSE(PearsonCorrelation(x, y3).ok());
  EXPECT_FALSE(PearsonCorrelation(x, constant).ok());
  EXPECT_FALSE(
      PearsonCorrelation(std::vector<double>{1.0}, std::vector<double>{1.0})
          .ok());
}

TEST(LogLogTest, PowerLawIsPerfectlyCorrelated) {
  // y = x^2.5 is exactly linear in log-log space.
  std::vector<double> x, y;
  for (double v = 1.0; v <= 100.0; v *= 1.7) {
    x.push_back(v);
    y.push_back(std::pow(v, 2.5));
  }
  EXPECT_NEAR(*LogLogPearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(LogLogTest, NonPositivePairsAreDropped) {
  const std::vector<double> x = {1.0, 0.0, 10.0, 100.0, -5.0};
  const std::vector<double> y = {1.0, 50.0, 10.0, 100.0, 3.0};
  // Only (1,1), (10,10), (100,100) survive -> perfect correlation.
  EXPECT_NEAR(*LogLogPearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (const double v : x) y.push_back(std::exp(v));  // monotone
  EXPECT_NEAR(*SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, HandComputedWithTies) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {10.0, 10.0, 20.0, 30.0};
  // ranks x: 1,2,3,4; ranks y: 1.5,1.5,3,4. Pearson of ranks:
  // dx = -1.5,-0.5,0.5,1.5; dy = -1,-1,0.5,1.5
  // -> sxy = 4.5, sxx = 5, syy = 4.5 -> r = 4.5/sqrt(22.5).
  EXPECT_NEAR(*SpearmanCorrelation(x, y), 4.5 / std::sqrt(22.5), 1e-12);
}

TEST(SpearmanTest, InvariantToMonotoneTransforms) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.5, 9.0, 2.6};
  const std::vector<double> y = {2.0, 7.0, 1.0, 8.0, 0.5, 3.0};
  const double base = *SpearmanCorrelation(x, y);
  std::vector<double> x_exp;
  for (const double v : x) x_exp.push_back(std::exp(v));
  EXPECT_NEAR(*SpearmanCorrelation(x_exp, y), base, 1e-12);
}

TEST(EcdfTest, CdfAndSurvival) {
  const std::vector<double> sample = {1.0, 2.0, 2.0, 3.0};
  const Ecdf ecdf(sample);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.Cdf(5.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Survival(2.0), 0.75);  // P[X >= 2]
  EXPECT_DOUBLE_EQ(ecdf.Survival(2.5), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.Survival(0.0), 1.0);
}

TEST(EcdfTest, LogSurvivalSeriesSpansPositiveRange) {
  std::vector<double> sample;
  for (double v = 1.0; v <= 1e6; v *= 3.0) sample.push_back(v);
  const Ecdf ecdf(sample);
  const auto series = ecdf.LogSurvivalSeries(10);
  ASSERT_EQ(series.size(), 10u);
  EXPECT_NEAR(series.front().first, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(series.front().second, 1.0);
  EXPECT_GT(series.back().second, 0.0);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].first, series[i - 1].first);
    EXPECT_LE(series[i].second, series[i - 1].second);
  }
}

TEST(HistogramTest, BinningAndShares) {
  const std::vector<double> sample = {0.1, 0.2, 0.5, 0.9, 1.5, -2.0};
  const Histogram h = MakeHistogram(sample, 0.0, 1.0, 4);
  EXPECT_EQ(h.total, 6);
  // -2.0 clamps into bin 0; 1.5 clamps into bin 3.
  EXPECT_EQ(h.counts[0], 3);  // 0.1, 0.2, -2.0
  EXPECT_EQ(h.counts[1], 0);
  EXPECT_EQ(h.counts[2], 1);  // 0.5
  EXPECT_EQ(h.counts[3], 2);  // 0.9, 1.5
  EXPECT_DOUBLE_EQ(h.Share(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.125);
}

}  // namespace
}  // namespace netbone
