// Tests for the paper's future-work extensions implemented in this repo:
// noise-corrected change detection and the multilayer NC backbone
// (conclusion, Sec. VII).

#include <cmath>

#include <gtest/gtest.h>

#include "core/change_detection.h"
#include "core/multilayer.h"
#include "core/filter.h"
#include "gen/countries.h"
#include "graph/builder.h"

namespace netbone {
namespace {

Graph MakeSnapshot(double special_weight) {
  // Dense-ish 6-node network; one designated pair carries the varying
  // weight, everything else is fixed background.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, special_weight);
  builder.AddEdge(0, 2, 100.0);
  builder.AddEdge(0, 3, 120.0);
  builder.AddEdge(1, 2, 90.0);
  builder.AddEdge(1, 3, 110.0);
  builder.AddEdge(2, 3, 100.0);
  builder.AddEdge(2, 4, 80.0);
  builder.AddEdge(3, 5, 90.0);
  builder.AddEdge(4, 5, 100.0);
  return *builder.Build();
}

// ---------------------------------------------------------------------------
// Change detection.
// ---------------------------------------------------------------------------

TEST(ChangeDetectionTest, IdenticalSnapshotsShowNoChange) {
  const Graph g = MakeSnapshot(100.0);
  const auto report = DetectChanges(g, g);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->significant_count, 0);
  EXPECT_EQ(report->evaluated_pairs, g.num_edges());
  for (const EdgeChange& change : report->changes) {
    EXPECT_NEAR(change.z, 0.0, 1e-12);
    EXPECT_FALSE(change.significant);
  }
}

TEST(ChangeDetectionTest, LargeSingleEdgeChangeIsFlagged) {
  const Graph before = MakeSnapshot(100.0);
  const Graph after = MakeSnapshot(600.0);
  const auto report = DetectChanges(before, after);
  ASSERT_TRUE(report.ok());
  // The 0-1 pair must be flagged with a positive z. Note that other pairs
  // can legitimately flag too: when one pair grabs a much larger share of
  // the network total, every other pair's *relative* salience genuinely
  // drops — the lift is defined against the snapshot's marginals.
  const EdgeChange* special = nullptr;
  for (const EdgeChange& change : report->changes) {
    if (change.src == 0 && change.dst == 1) special = &change;
  }
  ASSERT_NE(special, nullptr);
  EXPECT_TRUE(special->significant);
  EXPECT_GT(special->z, 1.64);
  EXPECT_GT(special->lift_after, special->lift_before);
}

TEST(ChangeDetectionTest, GlobalScalingIsNotAChange) {
  // Doubling every weight changes no lift: the NC transform is expressed
  // relative to each snapshot's marginals.
  const Graph before = MakeSnapshot(100.0);
  GraphBuilder doubled_builder(Directedness::kUndirected);
  for (const Edge& e : before.edges()) {
    doubled_builder.AddEdge(e.src, e.dst, 2.0 * e.weight);
  }
  const Graph after = *doubled_builder.Build();
  const auto report = DetectChanges(before, after);
  ASSERT_TRUE(report.ok());
  for (const EdgeChange& change : report->changes) {
    EXPECT_NEAR(change.lift_after, change.lift_before, 1e-12);
  }
  EXPECT_EQ(report->significant_count, 0);
}

TEST(ChangeDetectionTest, VanishedEdgeCountsAsChange) {
  const Graph before = MakeSnapshot(400.0);
  // Remove the 0-1 edge entirely in the second snapshot.
  GraphBuilder builder(Directedness::kUndirected);
  for (const Edge& e : before.edges()) {
    if (!(e.src == 0 && e.dst == 1)) {
      builder.AddEdge(e.src, e.dst, e.weight);
    }
  }
  const Graph after = *builder.Build();
  ChangeDetectionOptions options;
  options.delta = 1.0;
  const auto report = DetectChanges(before, after, options);
  ASSERT_TRUE(report.ok());
  bool found = false;
  for (const EdgeChange& change : report->changes) {
    if (change.src == 0 && change.dst == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(change.weight_after, 0.0);
      EXPECT_DOUBLE_EQ(change.lift_after, -1.0);
      EXPECT_LT(change.z, -1.0);
      EXPECT_TRUE(change.significant);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChangeDetectionTest, MissingPairsCanBeSkipped) {
  const Graph before = MakeSnapshot(400.0);
  GraphBuilder builder(Directedness::kUndirected);
  for (const Edge& e : before.edges()) {
    if (!(e.src == 0 && e.dst == 1)) {
      builder.AddEdge(e.src, e.dst, e.weight);
    }
  }
  const Graph after = *builder.Build();
  ChangeDetectionOptions options;
  options.include_missing_pairs = false;
  const auto report = DetectChanges(before, after, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evaluated_pairs, before.num_edges() - 1);
}

TEST(ChangeDetectionTest, HigherDeltaFlagsFewerChanges) {
  const auto suite = GenerateCountrySuite(/*seed=*/5, /*num_years=*/2,
                                          /*num_countries=*/40);
  ASSERT_TRUE(suite.ok());
  const TemporalNetwork& trade =
      suite->network(CountryNetworkKind::kTrade);
  int64_t previous = std::numeric_limits<int64_t>::max();
  for (const double delta : {1.0, 1.64, 2.32, 5.0}) {
    ChangeDetectionOptions options;
    options.delta = delta;
    const auto report =
        DetectChanges(trade.snapshot(0), trade.snapshot(1), options);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->significant_count, previous);
    previous = report->significant_count;
  }
}

TEST(ChangeDetectionTest, RejectsMismatchedSnapshots) {
  const Graph g = MakeSnapshot(100.0);
  GraphBuilder other(Directedness::kUndirected);
  other.AddEdge(0, 1, 1.0);
  EXPECT_FALSE(DetectChanges(g, *other.Build()).ok());

  GraphBuilder directed(Directedness::kDirected);
  directed.ReserveNodes(g.num_nodes());
  directed.AddEdge(0, 1, 1.0);
  EXPECT_FALSE(DetectChanges(g, *directed.Build()).ok());

  ChangeDetectionOptions pvalue;
  pvalue.nc_options.use_binomial_pvalue = true;
  EXPECT_FALSE(DetectChanges(g, g, pvalue).ok());
}

TEST(ChangeDetectionTest, LiftChangeZMatchesDefinition) {
  const auto a = NoiseCorrectedEdge(5.0, 20.0, 20.0, 100.0);
  const auto b = NoiseCorrectedEdge(9.0, 20.0, 20.0, 100.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double expected =
      (b->transformed_lift - a->transformed_lift) /
      std::sqrt(a->variance_lift + b->variance_lift);
  EXPECT_DOUBLE_EQ(LiftChangeZ(*a, *b), expected);
  EXPECT_DOUBLE_EQ(LiftChangeZ(*a, *a), 0.0);
  EXPECT_DOUBLE_EQ(LiftChangeZ(*b, *a), -expected);
}

// ---------------------------------------------------------------------------
// Multilayer NC.
// ---------------------------------------------------------------------------

MultilayerNetwork MakeTwoLayers() {
  // Layer A: hub 0 dominates. Layer B: the same nodes, but pair 1-2 is
  // strong while the hub is quiet.
  GraphBuilder a(Directedness::kUndirected);
  a.AddEdge(0, 1, 20.0);
  a.AddEdge(0, 2, 20.0);
  a.AddEdge(0, 3, 20.0);
  a.AddEdge(1, 2, 2.0);
  a.AddEdge(2, 3, 2.0);
  GraphBuilder b(Directedness::kUndirected);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(0, 3, 2.0);
  b.AddEdge(1, 2, 15.0);
  b.AddEdge(2, 3, 2.0);
  auto network = MultilayerNetwork::Create({*a.Build(), *b.Build()},
                                           {"hubby", "peery"});
  return *std::move(network);
}

TEST(MultilayerTest, CreateValidatesLayers) {
  GraphBuilder a(Directedness::kUndirected);
  a.AddEdge(0, 1, 1.0);
  GraphBuilder b(Directedness::kUndirected);
  b.AddEdge(0, 3, 1.0);  // 4 nodes vs 2
  EXPECT_FALSE(MultilayerNetwork::Create({*a.Build(), *b.Build()}).ok());
  EXPECT_FALSE(MultilayerNetwork::Create({}).ok());
  GraphBuilder c(Directedness::kDirected);
  c.ReserveNodes(2);
  c.AddEdge(0, 1, 1.0);
  GraphBuilder a2(Directedness::kUndirected);
  a2.AddEdge(0, 1, 1.0);
  EXPECT_FALSE(MultilayerNetwork::Create({*a2.Build(), *c.Build()}).ok());
}

TEST(MultilayerTest, ZeroCouplingEqualsIndependentNc) {
  const MultilayerNetwork network = MakeTwoLayers();
  MultilayerNcOptions options;
  options.coupling = 0.0;
  const auto coupled = MultilayerNoiseCorrected(network, options);
  ASSERT_TRUE(coupled.ok()) << coupled.status().ToString();
  ASSERT_EQ(coupled->size(), 2u);
  for (int64_t l = 0; l < network.num_layers(); ++l) {
    const auto independent = NoiseCorrected(network.layer(l));
    ASSERT_TRUE(independent.ok());
    for (EdgeId id = 0; id < independent->size(); ++id) {
      EXPECT_NEAR((*coupled)[static_cast<size_t>(l)].at(id).score,
                  independent->at(id).score, 1e-12);
      EXPECT_NEAR((*coupled)[static_cast<size_t>(l)].at(id).sdev,
                  independent->at(id).sdev, 1e-12);
    }
  }
}

TEST(MultilayerTest, CouplingJudgesLayersByCrossLayerPropensity) {
  // Node 0 is a hub in layer A. Under full coupling, its layer-B edges
  // are judged against its cross-layer propensity to connect — the hub's
  // quiet layer-B links become LESS surprising (score drops), while the
  // 1-2 pair (under-active across the multiplex relative to within layer
  // B) becomes MORE surprising.
  const MultilayerNetwork network = MakeTwoLayers();
  MultilayerNcOptions independent;
  independent.coupling = 0.0;
  MultilayerNcOptions coupled;
  coupled.coupling = 1.0;
  const auto without = MultilayerNoiseCorrected(network, independent);
  const auto with = MultilayerNoiseCorrected(network, coupled);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  const Graph& layer_b = network.layer(1);
  const EdgeId hub_edge = layer_b.FindEdge(0, 3);
  const EdgeId peer_edge = layer_b.FindEdge(1, 2);
  ASSERT_GE(hub_edge, 0);
  ASSERT_GE(peer_edge, 0);
  EXPECT_LT((*with)[1].at(hub_edge).score,
            (*without)[1].at(hub_edge).score);
  EXPECT_GT((*with)[1].at(peer_edge).score,
            (*without)[1].at(peer_edge).score);
  // Either way, the peripheral pair outranks the hub edge more clearly
  // under coupling.
  EXPECT_GT((*with)[1].at(peer_edge).score - (*with)[1].at(hub_edge).score,
            (*without)[1].at(peer_edge).score -
                (*without)[1].at(hub_edge).score);
}

TEST(MultilayerTest, ScoresStayInRangeAcrossCouplings) {
  const MultilayerNetwork network = MakeTwoLayers();
  for (const double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    MultilayerNcOptions options;
    options.coupling = gamma;
    const auto scored = MultilayerNoiseCorrected(network, options);
    ASSERT_TRUE(scored.ok()) << "gamma=" << gamma;
    for (const ScoredEdges& layer : *scored) {
      for (EdgeId id = 0; id < layer.size(); ++id) {
        EXPECT_GE(layer.at(id).score, -1.0);
        EXPECT_LT(layer.at(id).score, 1.0);
        EXPECT_GE(layer.at(id).sdev, 0.0);
      }
    }
  }
}

TEST(MultilayerTest, RejectsBadCoupling) {
  const MultilayerNetwork network = MakeTwoLayers();
  MultilayerNcOptions options;
  options.coupling = 1.5;
  EXPECT_FALSE(MultilayerNoiseCorrected(network, options).ok());
  options.coupling = -0.1;
  EXPECT_FALSE(MultilayerNoiseCorrected(network, options).ok());
}

TEST(MultilayerTest, WorksOnCountrySuiteLayers) {
  // Trade + Business + Flight as three layers of one country multiplex.
  const auto suite = GenerateCountrySuite(/*seed=*/9, /*num_years=*/1,
                                          /*num_countries=*/40);
  ASSERT_TRUE(suite.ok());
  auto network = MultilayerNetwork::Create(
      {suite->network(CountryNetworkKind::kTrade).front(),
       suite->network(CountryNetworkKind::kBusiness).front(),
       suite->network(CountryNetworkKind::kFlight).front()},
      {"trade", "business", "flight"});
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  const auto scored = MultilayerNoiseCorrected(*network, {.coupling = 0.5});
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  ASSERT_EQ(scored->size(), 3u);
  for (size_t l = 0; l < 3; ++l) {
    EXPECT_EQ((*scored)[l].size(), network->layer(l).num_edges());
    const BackboneMask mask = FilterByDelta((*scored)[l], 1.64);
    EXPECT_GT(mask.kept, 0);
    EXPECT_LT(mask.kept, network->layer(l).num_edges());
  }
}

}  // namespace
}  // namespace netbone
