// Tests for the synthetic O*NET occupation suite (Sec. VI case study
// substitute): the above-average retention filter, the co-occurrence
// network's class structure, generic-skill noise, and the flow model.

#include "gen/occupations.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace netbone {
namespace {

class OccupationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    OccupationWorldOptions options;
    options.num_occupations = 120;
    options.num_skills = 60;
    options.num_classes = 6;
    options.minor_groups_per_class = 2;
    options.num_generic_skills = 10;
    options.seed = 99;
    static Result<OccupationWorld> holder =
        GenerateOccupationWorld(options);
    ASSERT_TRUE(holder.ok()) << holder.status().ToString();
    world_ = &*holder;
  }
  static const OccupationWorld* world_;
};

const OccupationWorld* OccupationTest::world_ = nullptr;

TEST_F(OccupationTest, ShapesAreConsistent) {
  EXPECT_EQ(world_->names.size(), 120u);
  EXPECT_EQ(world_->major_class.size(), 120u);
  EXPECT_EQ(world_->importance.size(), 120u * 60u);
  EXPECT_EQ(world_->retained.size(), 120u * 60u);
  EXPECT_EQ(world_->co_occurrence.num_nodes(), 120);
  EXPECT_EQ(world_->flows.num_nodes(), 120);
  EXPECT_FALSE(world_->co_occurrence.directed());
  EXPECT_TRUE(world_->flows.directed());
}

TEST_F(OccupationTest, ClassesPartitionOccupations) {
  for (const int32_t c : world_->major_class) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 6);
  }
  for (size_t o = 0; o < world_->minor_group.size(); ++o) {
    EXPECT_EQ(world_->major_class[o], world_->minor_group[o] / 2);
  }
}

TEST_F(OccupationTest, RetentionImplementsAboveAverageRule) {
  // Recompute the filter directly from the score matrices.
  const size_t n = 120, s = 60;
  for (size_t sk = 0; sk < s; ++sk) {
    double mean_importance = 0.0, mean_level = 0.0;
    for (size_t o = 0; o < n; ++o) {
      mean_importance += world_->importance[o * s + sk];
      mean_level += world_->level[o * s + sk];
    }
    mean_importance /= static_cast<double>(n);
    mean_level /= static_cast<double>(n);
    for (size_t o = 0; o < n; ++o) {
      const bool expected =
          world_->importance[o * s + sk] > mean_importance &&
          world_->level[o * s + sk] > mean_level;
      ASSERT_EQ(world_->Retained(static_cast<int32_t>(o),
                                 static_cast<int32_t>(sk)),
                expected)
          << "o=" << o << " sk=" << sk;
    }
  }
}

TEST_F(OccupationTest, CoOccurrenceWeightsCountSharedSkills) {
  const Graph& co = world_->co_occurrence;
  const size_t s = 60;
  for (EdgeId id = 0; id < std::min<EdgeId>(co.num_edges(), 200); ++id) {
    const Edge& e = co.edge(id);
    int64_t shared = 0;
    for (size_t sk = 0; sk < s; ++sk) {
      if (world_->Retained(e.src, static_cast<int32_t>(sk)) &&
          world_->Retained(e.dst, static_cast<int32_t>(sk))) {
        ++shared;
      }
    }
    EXPECT_DOUBLE_EQ(e.weight, static_cast<double>(shared));
  }
}

TEST_F(OccupationTest, SameMinorGroupSharesMoreSkills) {
  const Graph& co = world_->co_occurrence;
  double same_sum = 0.0, cross_sum = 0.0;
  int64_t same_n = 0, cross_n = 0;
  for (const Edge& e : co.edges()) {
    const bool same = world_->minor_group[static_cast<size_t>(e.src)] ==
                      world_->minor_group[static_cast<size_t>(e.dst)];
    (same ? same_sum : cross_sum) += e.weight;
    (same ? same_n : cross_n) += 1;
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same_sum / same_n, 1.5 * cross_sum / cross_n);
}

TEST_F(OccupationTest, GenericSkillsCreateCrossClassEdges) {
  // The dense-noise mechanism: a substantial share of co-occurrence edges
  // crosses class boundaries (generic skills are retained everywhere).
  const Graph& co = world_->co_occurrence;
  int64_t cross = 0;
  for (const Edge& e : co.edges()) {
    if (world_->major_class[static_cast<size_t>(e.src)] !=
        world_->major_class[static_cast<size_t>(e.dst)]) {
      ++cross;
    }
  }
  EXPECT_GT(static_cast<double>(cross) /
                static_cast<double>(co.num_edges()),
            0.5);
}

TEST_F(OccupationTest, FlowMarginalsMatchNetwork) {
  for (NodeId v = 0; v < world_->flows.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(world_->outflow[static_cast<size_t>(v)],
                     world_->flows.out_strength(v));
    EXPECT_DOUBLE_EQ(world_->inflow[static_cast<size_t>(v)],
                     world_->flows.in_strength(v));
  }
}

TEST_F(OccupationTest, FlowsConcentrateWithinClasses) {
  double same = 0.0, cross = 0.0;
  int64_t same_n = 0, cross_n = 0;
  for (const Edge& e : world_->flows.edges()) {
    const bool same_class =
        world_->major_class[static_cast<size_t>(e.src)] ==
        world_->major_class[static_cast<size_t>(e.dst)];
    (same_class ? same : cross) += e.weight;
    (same_class ? same_n : cross_n) += 1;
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST_F(OccupationTest, FlowPredictionCorrelationIsPositive) {
  const auto all_pairs =
      FlowPredictionCorrelation(*world_, std::vector<bool>());
  ASSERT_TRUE(all_pairs.ok()) << all_pairs.status().ToString();
  EXPECT_GT(*all_pairs, 0.2);
  EXPECT_LT(*all_pairs, 1.0);
}

TEST_F(OccupationTest, FlowPredictionMaskValidatesSize) {
  EXPECT_FALSE(
      FlowPredictionCorrelation(*world_, std::vector<bool>(3, true)).ok());
}

TEST(OccupationOptionsTest, RejectsBadConfigurations) {
  OccupationWorldOptions options;
  options.num_occupations = 5;
  options.num_classes = 10;
  EXPECT_FALSE(GenerateOccupationWorld(options).ok());
  options = {};
  options.num_generic_skills = options.num_skills;
  EXPECT_FALSE(GenerateOccupationWorld(options).ok());
}

TEST(OccupationOptionsTest, DeterministicForSeed) {
  OccupationWorldOptions options;
  options.num_occupations = 60;
  options.num_skills = 40;
  options.num_classes = 5;
  options.num_generic_skills = 8;
  options.seed = 7;
  const auto a = GenerateOccupationWorld(options);
  const auto b = GenerateOccupationWorld(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->co_occurrence.num_edges(), b->co_occurrence.num_edges());
  for (EdgeId id = 0; id < a->co_occurrence.num_edges(); ++id) {
    EXPECT_EQ(a->co_occurrence.edge(id), b->co_occurrence.edge(id));
  }
}

}  // namespace
}  // namespace netbone
