// Tests for the Beta/Binomial machinery of the NC null model: moments,
// method-of-moments fitting (paper Eqs. 5-8), and the hypergeometric prior.

#include "stats/distributions.h"

#include <tuple>

#include <gtest/gtest.h>

namespace netbone {
namespace {

TEST(BetaMomentsTest, KnownDistribution) {
  // Beta(2, 3): mean 0.4, variance 0.04.
  const BetaParams params{2.0, 3.0};
  EXPECT_DOUBLE_EQ(BetaMean(params), 0.4);
  EXPECT_DOUBLE_EQ(BetaVariance(params), 2.0 * 3.0 / (25.0 * 6.0));
}

TEST(FitBetaTest, RecoversKnownParameters) {
  const BetaParams truth{2.0, 3.0};
  const auto fitted = FitBetaByMoments(BetaMean(truth), BetaVariance(truth));
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->alpha, 2.0, 1e-10);
  EXPECT_NEAR(fitted->beta, 3.0, 1e-10);
}

TEST(FitBetaTest, RejectsInvalidMoments) {
  EXPECT_FALSE(FitBetaByMoments(0.0, 0.01).ok());
  EXPECT_FALSE(FitBetaByMoments(1.0, 0.01).ok());
  EXPECT_FALSE(FitBetaByMoments(0.5, 0.0).ok());
  // Variance above the Beta bound mu(1-mu).
  EXPECT_FALSE(FitBetaByMoments(0.5, 0.3).ok());
}

TEST(FitBetaTest, PaperEq8EqualsStandardForm) {
  // Eq. 8: beta = mu((1-mu)^2/sigma^2 + 1) - 1 must equal the standard
  // method-of-moments (1-mu)(mu(1-mu)/sigma^2 - 1).
  const double mu = 0.037, var = 2.9e-4;
  const auto fitted = FitBetaByMoments(mu, var);
  ASSERT_TRUE(fitted.ok());
  const double standard = (1.0 - mu) * (mu * (1.0 - mu) / var - 1.0);
  EXPECT_NEAR(fitted->beta, standard, 1e-10);
}

TEST(FitBetaTest, ErratumVariantDiffersByMuSquaredTerm) {
  // The Python module uses (1 - mu^2); for tiny mu the difference is
  // O(mu^2 / sigma^2 * mu) — measurable but small.
  const double mu = 0.01, var = 1e-5;
  const auto paper = FitBetaByMoments(mu, var);
  const auto erratum = FitBetaByMomentsPythonErratum(mu, var);
  ASSERT_TRUE(paper.ok());
  ASSERT_TRUE(erratum.ok());
  EXPECT_DOUBLE_EQ(paper->alpha, erratum->alpha);
  EXPECT_NE(paper->beta, erratum->beta);
  EXPECT_NEAR(paper->beta, erratum->beta, 0.05 * paper->beta);
}

TEST(BinomialVarianceTest, Formula) {
  EXPECT_DOUBLE_EQ(BinomialVariance(100.0, 0.3), 21.0);
  EXPECT_DOUBLE_EQ(BinomialVariance(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialVariance(100.0, 1.0), 0.0);
}

TEST(PriorMomentsTest, MatchesPaperFormulas) {
  const double ni = 50.0, nj = 14.0, total = 108.0;
  const PriorMoments prior = HypergeometricPriorMoments(ni, nj, total);
  EXPECT_DOUBLE_EQ(prior.mean, ni * nj / (total * total));
  EXPECT_DOUBLE_EQ(prior.variance,
                   ni * nj * (total - ni) * (total - nj) /
                       (total * total * total * total * (total - 1.0)));
}

TEST(PriorMomentsTest, DegenerateWhenMarginalIsTotal) {
  // A node holding the entire network weight leaves no room for variance.
  const PriorMoments prior = HypergeometricPriorMoments(100.0, 30.0, 100.0);
  EXPECT_DOUBLE_EQ(prior.variance, 0.0);
}

TEST(PriorMomentsTest, TinyNetworkGuard) {
  const PriorMoments prior = HypergeometricPriorMoments(1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(prior.variance, 0.0);  // n.. - 1 == 0 guard
}

// Property sweep: fit-then-evaluate must round-trip moments across a grid
// of valid (mean, variance) pairs.
using MomentPair = std::tuple<double, double>;
class BetaRoundTripTest : public ::testing::TestWithParam<MomentPair> {};

TEST_P(BetaRoundTripTest, MomentsRoundTrip) {
  const auto [mean, variance_share] = GetParam();
  // variance expressed as a share of the Beta bound mu(1-mu).
  const double variance = variance_share * mean * (1.0 - mean);
  const auto fitted = FitBetaByMoments(mean, variance);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  EXPECT_GT(fitted->alpha, 0.0);
  EXPECT_GT(fitted->beta, 0.0);
  EXPECT_NEAR(BetaMean(*fitted), mean, 1e-9);
  EXPECT_NEAR(BetaVariance(*fitted), variance, 1e-9 * variance + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    MomentGrid, BetaRoundTripTest,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1, 0.3, 0.5, 0.7,
                                         0.9, 0.99),
                       ::testing::Values(0.05, 0.2, 0.5, 0.9)));

// Property sweep: the hypergeometric prior is always a valid Beta target
// for interior marginals.
using MarginalConfig = std::tuple<double, double, double>;
class PriorValidityTest : public ::testing::TestWithParam<MarginalConfig> {};

TEST_P(PriorValidityTest, PriorIsFittable) {
  const auto [ni, nj, total] = GetParam();
  const PriorMoments prior = HypergeometricPriorMoments(ni, nj, total);
  ASSERT_GT(prior.mean, 0.0);
  ASSERT_LT(prior.mean, 1.0);
  ASSERT_GT(prior.variance, 0.0);
  const auto fitted = FitBetaByMoments(prior.mean, prior.variance);
  ASSERT_TRUE(fitted.ok()) << "ni=" << ni << " nj=" << nj
                           << " total=" << total << ": "
                           << fitted.status().ToString();
  EXPECT_GT(fitted->alpha, 0.0);
  EXPECT_GT(fitted->beta, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    MarginalGrid, PriorValidityTest,
    ::testing::Values(MarginalConfig{10.0, 10.0, 100.0},
                      MarginalConfig{1.0, 1.0, 10.0},
                      MarginalConfig{50.0, 3.0, 200.0},
                      MarginalConfig{900.0, 900.0, 2000.0},
                      MarginalConfig{5.0, 1000.0, 50000.0},
                      MarginalConfig{2.0, 2.0, 1000000.0}));

}  // namespace
}  // namespace netbone
