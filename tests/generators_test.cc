// Tests for the synthetic generators: Erdős–Rényi, Barabási–Albert, the
// planted partition, and the Sec. V-A noise model.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/noise_model.h"
#include "gen/planted_partition.h"
#include "graph/builder.h"
#include "graph/components.h"

namespace netbone {
namespace {

// ---------------------------------------------------------------------------
// Erdős–Rényi.
// ---------------------------------------------------------------------------

TEST(ErdosRenyiTest, UndirectedEdgeCountMatchesAverageDegree) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 1000, .average_degree = 3.0, .seed = 1});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1500);  // n * k / 2
  EXPECT_EQ(g->num_nodes(), 1000);
  EXPECT_FALSE(g->directed());
}

TEST(ErdosRenyiTest, DirectedEdgeCount) {
  ErdosRenyiOptions options;
  options.num_nodes = 500;
  options.average_degree = 2.0;
  options.directedness = Directedness::kDirected;
  options.seed = 2;
  const auto g = GenerateErdosRenyi(options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1000);
  EXPECT_TRUE(g->directed());
}

TEST(ErdosRenyiTest, WeightsWithinConfiguredRange) {
  ErdosRenyiOptions options;
  options.num_nodes = 200;
  options.weight_lo = 5.0;
  options.weight_hi = 7.0;
  options.seed = 3;
  const auto g = GenerateErdosRenyi(options);
  ASSERT_TRUE(g.ok());
  for (const Edge& e : g->edges()) {
    EXPECT_GE(e.weight, 5.0);
    EXPECT_LT(e.weight, 7.0);
  }
}

TEST(ErdosRenyiTest, NoSelfLoopsOrDuplicates) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 100, .average_degree = 8.0, .seed = 4});
  ASSERT_TRUE(g.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    const Edge& e = g->edge(id);
    EXPECT_NE(e.src, e.dst);
    if (id > 0) {
      const Edge& prev = g->edge(id - 1);
      EXPECT_FALSE(prev.src == e.src && prev.dst == e.dst);
    }
  }
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  const auto a = GenerateErdosRenyi(
      {.num_nodes = 100, .average_degree = 4.0, .seed = 77});
  const auto b = GenerateErdosRenyi(
      {.num_nodes = 100, .average_degree = 4.0, .seed = 77});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (EdgeId id = 0; id < a->num_edges(); ++id) {
    EXPECT_EQ(a->edge(id), b->edge(id));
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleDensity) {
  EXPECT_FALSE(GenerateErdosRenyi(
                   {.num_nodes = 10, .average_degree = 20.0, .seed = 1})
                   .ok());
  EXPECT_FALSE(GenerateErdosRenyi(
                   {.num_nodes = 1, .average_degree = 1.0, .seed = 1})
                   .ok());
}

// ---------------------------------------------------------------------------
// Barabási–Albert.
// ---------------------------------------------------------------------------

TEST(BarabasiAlbertTest, AverageDegreeNearTarget) {
  const auto g = GenerateBarabasiAlbert(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 5});
  ASSERT_TRUE(g.ok());
  const double avg_degree =
      2.0 * static_cast<double>(g->num_edges()) / g->num_nodes();
  EXPECT_NEAR(avg_degree, 3.0, 0.3);
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  // Preferential attachment must produce a max degree far above the mean
  // (scale-free-ish tail), unlike an ER graph of equal density.
  const auto g = GenerateBarabasiAlbert(
      {.num_nodes = 2000, .average_degree = 3.0, .seed = 6});
  ASSERT_TRUE(g.ok());
  int64_t max_degree = 0;
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    max_degree = std::max(max_degree, g->out_degree(v));
  }
  EXPECT_GT(max_degree, 30);
}

TEST(BarabasiAlbertTest, ConnectedByConstruction) {
  const auto g = GenerateBarabasiAlbert(
      {.num_nodes = 300, .average_degree = 3.0, .seed = 7});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsConnected(*g));
}

TEST(BarabasiAlbertTest, UnitWeights) {
  const auto g = GenerateBarabasiAlbert(
      {.num_nodes = 100, .average_degree = 4.0, .seed = 8});
  ASSERT_TRUE(g.ok());
  for (const Edge& e : g->edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(BarabasiAlbertTest, RejectsDegenerateParameters) {
  EXPECT_FALSE(GenerateBarabasiAlbert(
                   {.num_nodes = 2, .average_degree = 3.0, .seed = 1})
                   .ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(
                   {.num_nodes = 100, .average_degree = 0.0, .seed = 1})
                   .ok());
}

// ---------------------------------------------------------------------------
// Planted partition.
// ---------------------------------------------------------------------------

TEST(PlantedPartitionTest, IntraBlockEdgesAreHeavier) {
  const auto pp = GeneratePlantedPartition({});
  ASSERT_TRUE(pp.ok());
  double intra_sum = 0.0, inter_sum = 0.0;
  int64_t intra_n = 0, inter_n = 0;
  for (const Edge& e : pp->graph.edges()) {
    const bool same = pp->block[static_cast<size_t>(e.src)] ==
                      pp->block[static_cast<size_t>(e.dst)];
    (same ? intra_sum : inter_sum) += e.weight;
    (same ? intra_n : inter_n) += 1;
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_GT(intra_sum / intra_n, 2.0 * inter_sum / inter_n);
}

TEST(PlantedPartitionTest, BlocksAreBalanced) {
  PlantedPartitionOptions options;
  options.num_nodes = 100;
  options.num_blocks = 4;
  const auto pp = GeneratePlantedPartition(options);
  ASSERT_TRUE(pp.ok());
  std::vector<int> counts(4, 0);
  for (const int32_t b : pp->block) counts[static_cast<size_t>(b)]++;
  for (const int c : counts) EXPECT_EQ(c, 25);
}

TEST(PlantedPartitionTest, RejectsBadBlockCount) {
  PlantedPartitionOptions options;
  options.num_nodes = 3;
  options.num_blocks = 5;
  EXPECT_FALSE(GeneratePlantedPartition(options).ok());
}

// ---------------------------------------------------------------------------
// Sec. V-A noise model.
// ---------------------------------------------------------------------------

TEST(NoiseModelTest, WeightsRespectTheEtaBands) {
  const auto truth = GenerateBarabasiAlbert(
      {.num_nodes = 60, .average_degree = 3.0, .seed = 9});
  ASSERT_TRUE(truth.ok());
  const double eta = 0.2;
  const auto noisy = ApplySectionVANoise(*truth, eta, 10);
  ASSERT_TRUE(noisy.ok());
  for (EdgeId id = 0; id < noisy->noisy.num_edges(); ++id) {
    const Edge& e = noisy->noisy.edge(id);
    const double degree_sum =
        static_cast<double>(truth->out_degree(e.src)) +
        static_cast<double>(truth->out_degree(e.dst));
    const double fraction = e.weight / degree_sum;
    if (noisy->ground_truth[static_cast<size_t>(id)]) {
      // True edges: U(eta, 1) of the degree sum.
      EXPECT_GE(fraction, eta);
      EXPECT_LE(fraction, 1.0);
    } else {
      // Noise edges: U(0, eta).
      EXPECT_LE(fraction, eta);
    }
  }
}

TEST(NoiseModelTest, GroundTruthMaskMatchesOriginalEdges) {
  const auto truth = GenerateBarabasiAlbert(
      {.num_nodes = 50, .average_degree = 3.0, .seed = 11});
  ASSERT_TRUE(truth.ok());
  const auto noisy = ApplySectionVANoise(*truth, 0.15, 12);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->num_true_edges, truth->num_edges());
  for (EdgeId id = 0; id < noisy->noisy.num_edges(); ++id) {
    const Edge& e = noisy->noisy.edge(id);
    EXPECT_EQ(noisy->ground_truth[static_cast<size_t>(id)],
              truth->FindEdge(e.src, e.dst) >= 0);
  }
}

TEST(NoiseModelTest, NetworkBecomesDense) {
  const auto truth = GenerateBarabasiAlbert(
      {.num_nodes = 50, .average_degree = 3.0, .seed = 13});
  ASSERT_TRUE(truth.ok());
  const auto noisy = ApplySectionVANoise(*truth, 0.25, 14);
  ASSERT_TRUE(noisy.ok());
  // Nearly all of the 50*49/2 = 1225 pairs carry weight.
  EXPECT_GT(noisy->noisy.num_edges(), 1100);
}

TEST(NoiseModelTest, ZeroEtaLeavesOnlyTrueEdges) {
  const auto truth = GenerateBarabasiAlbert(
      {.num_nodes = 40, .average_degree = 3.0, .seed = 15});
  ASSERT_TRUE(truth.ok());
  const auto noisy = ApplySectionVANoise(*truth, 0.0, 16);
  ASSERT_TRUE(noisy.ok());
  // U(0, 0) noise is identically zero: complement edges get no weight.
  EXPECT_EQ(noisy->noisy.num_edges(), truth->num_edges());
}

TEST(NoiseModelTest, RejectsDirectedOrBadEta) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  const Graph directed = *builder.Build();
  EXPECT_FALSE(ApplySectionVANoise(directed, 0.1, 1).ok());
  const auto truth = GenerateBarabasiAlbert(
      {.num_nodes = 20, .average_degree = 3.0, .seed = 1});
  ASSERT_TRUE(truth.ok());
  EXPECT_FALSE(ApplySectionVANoise(*truth, -0.1, 1).ok());
  EXPECT_FALSE(ApplySectionVANoise(*truth, 1.5, 1).ok());
}

}  // namespace
}  // namespace netbone
