// Tests for the observability primitives (src/obs/): histogram bucket
// boundary exactness, deterministic merge across shard counts,
// concurrent-record identity (the multiset of recorded values fully
// determines the snapshot, whatever the thread interleaving — this file
// is folded into the TSan suite to pin the data-race-freedom half of
// that claim), ShardedCounter exactness under contention, registry
// snapshot/coalesce/render behavior, quantile readout semantics, and the
// trace ring (sampling arithmetic, wraparound, never-blocking commits,
// JSON dump shape).

#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace netbone::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket layout

TEST(HistogramBuckets, SmallValuesGetExactUnitBuckets) {
  for (int64_t v = 0; v < kHistogramSubBuckets; ++v) {
    EXPECT_EQ(HistogramBucketIndex(v), v) << "value " << v;
    EXPECT_EQ(HistogramBucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBuckets, NegativeValuesClampToBucketZero) {
  EXPECT_EQ(HistogramBucketIndex(-1), 0);
  EXPECT_EQ(HistogramBucketIndex(INT64_MIN), 0);
}

TEST(HistogramBuckets, HugeValuesClampToLastBucket) {
  const int last = kHistogramBuckets - 1;
  EXPECT_EQ(HistogramBucketIndex(int64_t{1} << kHistogramMaxMajor), last);
  EXPECT_EQ(HistogramBucketIndex(INT64_MAX), last);
}

TEST(HistogramBuckets, LowerBoundRoundTripsToSameBucket) {
  // Every bucket's inclusive lower bound must land back in that bucket,
  // and (below the clamp) the value one-before must land in an earlier
  // bucket: together these pin the boundaries exactly.
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const int64_t lo = HistogramBucketLowerBound(b);
    EXPECT_EQ(HistogramBucketIndex(lo), b) << "bucket " << b;
    if (b > 0) {
      EXPECT_LT(HistogramBucketIndex(lo - 1), b) << "bucket " << b;
    }
  }
}

TEST(HistogramBuckets, BucketsCoverTheRangeMonotonically) {
  for (int b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_LT(HistogramBucketLowerBound(b - 1), HistogramBucketLowerBound(b));
  }
  // Spot-check the sub-bucket geometry: one octave above the linear
  // range, buckets advance by 2 (16 sub-buckets spanning [32, 64)).
  const int b32 = HistogramBucketIndex(32);
  EXPECT_EQ(HistogramBucketIndex(33), b32);      // same 2-wide sub-bucket
  EXPECT_EQ(HistogramBucketIndex(34), b32 + 1);  // next sub-bucket
  EXPECT_EQ(HistogramBucketIndex(63), b32 + kHistogramSubBuckets - 1);
  EXPECT_EQ(HistogramBucketIndex(64), b32 + kHistogramSubBuckets);
}

TEST(HistogramBuckets, PowersOfTwoStartTheirOctave) {
  for (int major = 4; major < kHistogramMaxMajor; ++major) {
    const int64_t v = int64_t{1} << major;
    EXPECT_EQ(HistogramBucketLowerBound(HistogramBucketIndex(v)), v)
        << "2^" << major << " must open its own sub-bucket";
  }
}

// ---------------------------------------------------------------------------
// Histogram recording + quantiles

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
  LatencyHistogram hist;
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.p50(), 0);
  EXPECT_EQ(snap.p99(), 0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(LatencyHistogram, ExactCountSumMinMax) {
  LatencyHistogram hist;
  int64_t sum = 0;
  for (int64_t v = 1; v <= 1000; ++v) {
    hist.Record(v * 7);
    sum += v * 7;
  }
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 7);
  EXPECT_EQ(snap.max, 7000);
}

TEST(LatencyHistogram, QuantileReadsBucketLowerBoundAndExactMax) {
  LatencyHistogram hist(1);
  for (int64_t v = 1; v <= 100; ++v) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  // Small values sit in exact unit buckets, so low/mid quantiles read
  // back exactly; the top quantile reports the exact recorded max even
  // though 100 shares a 4-wide sub-bucket.
  EXPECT_EQ(snap.ValueAtQuantile(0.01), 1);
  EXPECT_EQ(snap.ValueAtQuantile(0.10), 10);
  EXPECT_EQ(snap.p50(), HistogramBucketLowerBound(HistogramBucketIndex(50)));
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 100);
  EXPECT_EQ(snap.max, 100);
}

TEST(LatencyHistogram, SingleValueReportsItselfAtEveryQuantile) {
  LatencyHistogram hist(1);
  hist.Record(12345);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.0), snap.ValueAtQuantile(1.0));
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 12345);  // exact-max rule
}

// Records `values` into `hist` using `num_threads` threads, striped so
// every thread gets a distinct slice of the multiset.
void RecordStriped(LatencyHistogram& hist, const std::vector<int64_t>& values,
                   int num_threads) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < values.size();
           i += static_cast<size_t>(num_threads)) {
        hist.Record(values[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

std::vector<int64_t> TestMultiset() {
  // A spread that exercises unit buckets, mid-octaves, duplicates, and
  // the clamp bucket.
  std::vector<int64_t> values;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const int shift = static_cast<int>((state >> 58) % 42);  // 0..41
    values.push_back(static_cast<int64_t>(state >> (63 - shift % 40)));
  }
  values.push_back(0);
  values.push_back(int64_t{1} << (kHistogramMaxMajor + 1));  // clamps
  return values;
}

TEST(LatencyHistogram, SnapshotIsDeterministicAcrossShardAndThreadCounts) {
  const std::vector<int64_t> values = TestMultiset();

  // Reference: single shard, single thread.
  LatencyHistogram reference(1);
  for (const int64_t v : values) reference.Record(v);
  const HistogramSnapshot expected = reference.Snapshot();

  for (const int shards : {1, 3, 8}) {
    for (const int threads : {1, 2, 7}) {
      LatencyHistogram hist(shards);
      RecordStriped(hist, values, threads);
      const HistogramSnapshot snap = hist.Snapshot();
      EXPECT_EQ(snap.count, expected.count)
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(snap.sum, expected.sum);
      EXPECT_EQ(snap.min, expected.min);
      EXPECT_EQ(snap.max, expected.max);
      EXPECT_EQ(snap.buckets, expected.buckets);
      EXPECT_EQ(snap.p50(), expected.p50());
      EXPECT_EQ(snap.p95(), expected.p95());
      EXPECT_EQ(snap.p99(), expected.p99());
    }
  }
}

TEST(LatencyHistogram, MergeIsOrderIndependent) {
  const std::vector<int64_t> values = TestMultiset();
  LatencyHistogram a(1);
  LatencyHistogram b(1);
  LatencyHistogram all(1);
  for (size_t i = 0; i < values.size(); ++i) {
    (i % 2 == 0 ? a : b).Record(values[i]);
    all.Record(values[i]);
  }
  HistogramSnapshot ab = a.Snapshot();
  ab.Merge(b.Snapshot());
  HistogramSnapshot ba = b.Snapshot();
  ba.Merge(a.Snapshot());
  const HistogramSnapshot expected = all.Snapshot();
  EXPECT_EQ(ab.buckets, expected.buckets);
  EXPECT_EQ(ba.buckets, expected.buckets);
  EXPECT_EQ(ab.count, expected.count);
  EXPECT_EQ(ab.sum, expected.sum);
  EXPECT_EQ(ab.min, expected.min);
  EXPECT_EQ(ab.max, expected.max);
  EXPECT_EQ(ba.p95(), ab.p95());
  EXPECT_EQ(ab.p99(), expected.p99());
}

TEST(LatencyHistogram, ConcurrentRecordWhileSnapshotting) {
  // TSan target: snapshots taken mid-traffic must be race-free and every
  // record must eventually land exactly once.
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = hist.Snapshot();
      EXPECT_LE(snap.count, int64_t{kThreads} * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) hist.Record(t * kPerThread + i);
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, kThreads * kPerThread - 1);
}

// ---------------------------------------------------------------------------
// ShardedCounter

TEST(ShardedCounter, ExactUnderConcurrency) {
  ShardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
  counter.Add(-5);
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread - 5);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

// ---------------------------------------------------------------------------
// MetricRegistry + MetricsSnapshot

TEST(MetricRegistry, SnapshotSortsAndReadsEveryKind) {
  MetricRegistry registry;
  ShardedCounter requests;
  ShardedCounter errors;
  LatencyHistogram latency(1);
  requests.Add(42);
  errors.Add(3);
  latency.Record(100);
  latency.Record(200);
  int owner = 0;
  registry.RegisterCounter("z.requests", &requests, &owner);
  registry.RegisterCounter("a.errors", &errors, &owner);
  registry.RegisterGauge("m.depth", [] { return int64_t{7}; }, &owner);
  registry.RegisterHistogram("lat.ns", &latency, &owner);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.errors");  // sorted by name
  EXPECT_EQ(snap.counters[1].name, "z.requests");
  EXPECT_EQ(snap.ValueOf("z.requests"), 42);
  EXPECT_EQ(snap.ValueOf("a.errors"), 3);
  EXPECT_EQ(snap.ValueOf("m.depth"), 7);
  EXPECT_EQ(snap.ValueOf("missing", -1), -1);
  const HistogramSnapshot* hist = snap.FindHistogram("lat.ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2);
  EXPECT_EQ(snap.FindHistogram("missing"), nullptr);

  registry.Unregister(&owner);
  const MetricsSnapshot empty = registry.Snapshot();
  EXPECT_TRUE(empty.counters.empty());
  EXPECT_TRUE(empty.gauges.empty());
  EXPECT_TRUE(empty.histograms.empty());
}

TEST(MetricRegistry, DuplicateNamesCoalesceInSnapshot) {
  MetricRegistry registry;
  ShardedCounter a;
  ShardedCounter b;
  a.Add(10);
  b.Add(32);
  int owner = 0;
  registry.RegisterCounter("same.name", &a, &owner);
  registry.RegisterCounter("same.name", &b, &owner);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.ValueOf("same.name"), 42);
  registry.Unregister(&owner);
}

TEST(MetricsSnapshot, MergeAddsValuesAndFoldsHistograms) {
  MetricsSnapshot a;
  a.counters.push_back({"hits", 5});
  a.gauges.push_back({"depth", 2});
  MetricsSnapshot b;
  b.counters.push_back({"hits", 7});
  b.counters.push_back({"misses", 1});
  LatencyHistogram hist(1);
  hist.Record(50);
  b.histograms.push_back({"lat", hist.Snapshot()});
  a.Merge(b);
  EXPECT_EQ(a.ValueOf("hits"), 12);
  EXPECT_EQ(a.ValueOf("misses"), 1);
  EXPECT_EQ(a.ValueOf("depth"), 2);
  ASSERT_NE(a.FindHistogram("lat"), nullptr);
  EXPECT_EQ(a.FindHistogram("lat")->count, 1);
}

TEST(MetricsSnapshot, RenderTextAndJsonCarryTheMetrics) {
  MetricsSnapshot snap;
  snap.counters.push_back({"engine.requests", 9});
  LatencyHistogram hist(1);
  for (int64_t v = 1; v <= 20; ++v) hist.Record(v * 1000);
  snap.histograms.push_back({"engine.latency", hist.Snapshot()});
  const std::string text = snap.RenderText();
  EXPECT_NE(text.find("engine.requests"), std::string::npos);
  EXPECT_NE(text.find("engine.latency"), std::string::npos);
  const std::string json = snap.RenderJson("obs_test");
  EXPECT_NE(json.find("\"bench\": \"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_ns\""), std::string::npos);
  // Counter records carry their value; histogram records carry timings.
  EXPECT_NE(json.find("\"value\": 9"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorder, RateZeroDisablesSamplingButKeepsClock) {
  TraceRecorder recorder(/*sample_rate=*/0, /*buffer_bytes=*/1 << 16);
  EXPECT_FALSE(recorder.enabled());
  EXPECT_FALSE(recorder.ShouldSample());
  EXPECT_EQ(recorder.capacity(), 0);
  // The clock stays valid even when tracing is off — metrics-only
  // callers use it for per-request latency timestamps.
  const int64_t t0 = recorder.NowNs();
  EXPECT_GE(t0, 0);
  EXPECT_GE(recorder.NowNs(), t0);
}

TEST(TraceRecorder, SamplesExactlyOneInN) {
  TraceRecorder recorder(/*sample_rate=*/4, /*buffer_bytes=*/1 << 16);
  int sampled = 0;
  for (int i = 0; i < 400; ++i) {
    if (recorder.ShouldSample()) ++sampled;
  }
  EXPECT_EQ(sampled, 100);
}

RequestTrace MakeTrace(uint64_t id) {
  RequestTrace trace;
  trace.request_id = id;
  trace.SetMethod("noise_corrected");
  trace.SetKind("top_k");
  trace.path = AnswerPath::kWarm;
  trace.ok = true;
  trace.AddSpan(SpanKind::kCacheLookup, 10, 5);
  trace.AddSpan(SpanKind::kExtract, 20, 3);
  return trace;
}

TEST(TraceRecorder, RingKeepsTheNewestTracesOldestFirst) {
  TraceRecorder recorder(/*sample_rate=*/1,
                         /*buffer_bytes=*/4 * sizeof(RequestTrace));
  const int64_t cap = recorder.capacity();
  ASSERT_GT(cap, 0);
  ASSERT_LE(cap, 4);
  for (uint64_t id = 1; id <= 10; ++id) recorder.Commit(MakeTrace(id));
  EXPECT_EQ(recorder.sampled(), 10);
  const std::vector<RequestTrace> traces = recorder.Snapshot();
  ASSERT_EQ(static_cast<int64_t>(traces.size()), cap);
  // Wraparound keeps the newest `cap` traces, in commit order.
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].request_id,
              10 - static_cast<uint64_t>(cap) + 1 + i);
  }
  EXPECT_EQ(std::string(traces[0].method), "noise_corrected");
  EXPECT_EQ(std::string(traces[0].kind), "top_k");
  EXPECT_EQ(traces[0].num_spans, 2);
  EXPECT_EQ(traces[0].spans[0].kind, SpanKind::kCacheLookup);
}

TEST(TraceRecorder, SpanOverflowDropsSilently) {
  RequestTrace trace;
  for (int i = 0; i < RequestTrace::kMaxSpans + 3; ++i) {
    trace.AddSpan(SpanKind::kExtract, i, 1);
  }
  EXPECT_EQ(trace.num_spans, RequestTrace::kMaxSpans);
}

TEST(TraceRecorder, ConcurrentCommitAndSnapshotNeverBlocks) {
  // TSan target: writers lap the ring while a reader snapshots; every
  // commit either lands or is counted as dropped, never lost silently.
  TraceRecorder recorder(/*sample_rate=*/1,
                         /*buffer_bytes=*/8 * sizeof(RequestTrace));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<RequestTrace> traces = recorder.Snapshot();
      EXPECT_LE(static_cast<int64_t>(traces.size()), recorder.capacity());
      for (const RequestTrace& trace : traces) {
        EXPECT_LE(trace.num_spans, RequestTrace::kMaxSpans);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Commit(
            MakeTrace(static_cast<uint64_t>(t) * kPerThread + i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.sampled() + recorder.dropped(),
            int64_t{kThreads} * kPerThread);
}

TEST(TraceRecorder, DumpJsonContainsSpanChains) {
  TraceRecorder recorder(/*sample_rate=*/1,
                         /*buffer_bytes=*/4 * sizeof(RequestTrace));
  recorder.Commit(MakeTrace(7));
  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"request_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"warm\""), std::string::npos);
  EXPECT_NE(json.find("cache_lookup"), std::string::npos);
  EXPECT_NE(json.find("extract"), std::string::npos);
}

TEST(TraceNames, AreStableStrings) {
  EXPECT_STREQ(AnswerPathName(AnswerPath::kWarm), "warm");
  EXPECT_STREQ(AnswerPathName(AnswerPath::kDelta), "delta");
  EXPECT_STREQ(AnswerPathName(AnswerPath::kCold), "cold");
  EXPECT_STREQ(AnswerPathName(AnswerPath::kDegraded), "degraded");
  EXPECT_STREQ(AnswerPathName(AnswerPath::kNegative), "negative");
  EXPECT_STREQ(AnswerPathName(AnswerPath::kFailed), "failed");
  EXPECT_STREQ(SpanKindName(SpanKind::kAdmission), "admission");
  EXPECT_STREQ(SpanKindName(SpanKind::kColdScore), "cold_score");
}

}  // namespace
}  // namespace netbone::obs
