// End-to-end integration tests: miniature versions of the paper's
// experiments wired through the full pipeline (generate -> score ->
// threshold -> evaluate). These pin the *qualitative* results the full
// benches reproduce at scale.

#include <map>

#include <gtest/gtest.h>

#include "core/filter.h"
#include "core/registry.h"
#include "eval/coverage.h"
#include "eval/edge_budget.h"
#include "eval/quality.h"
#include "eval/recovery.h"
#include "eval/stability.h"
#include "gen/barabasi_albert.h"
#include "gen/countries.h"
#include "gen/noise_model.h"
#include "gen/occupations.h"
#include "graph/io.h"

namespace netbone {
namespace {

// ---------------------------------------------------------------------------
// Mini Fig. 4: synthetic recovery under noise.
// ---------------------------------------------------------------------------

double RecoveryFor(Method method, const NoisyNetwork& noisy) {
  const auto scored = RunMethod(method, noisy.noisy);
  if (!scored.ok()) return -1.0;
  const BackboneMask mask = TopK(*scored, noisy.num_true_edges);
  const auto jaccard = JaccardRecovery(mask.keep, noisy.ground_truth);
  return jaccard.ok() ? *jaccard : -1.0;
}

TEST(SyntheticRecoveryTest, NoiseCorrectedBeatsNaiveUnderHighNoise) {
  // Paper Fig. 4: "as noise increases ... our Noise-Corrected backbone is
  // more resilient". Averaged over seeds at eta = 0.25.
  double nc_total = 0.0, nt_total = 0.0, df_total = 0.0;
  const int seeds = 3;
  for (int seed = 0; seed < seeds; ++seed) {
    const auto truth = GenerateBarabasiAlbert(
        {.num_nodes = 120, .average_degree = 3.0,
         .seed = static_cast<uint64_t>(100 + seed)});
    ASSERT_TRUE(truth.ok());
    const auto noisy = ApplySectionVANoise(
        *truth, 0.25, static_cast<uint64_t>(200 + seed));
    ASSERT_TRUE(noisy.ok());
    nc_total += RecoveryFor(Method::kNoiseCorrected, *noisy);
    nt_total += RecoveryFor(Method::kNaiveThreshold, *noisy);
    df_total += RecoveryFor(Method::kDisparityFilter, *noisy);
  }
  EXPECT_GT(nc_total / seeds, nt_total / seeds);
  EXPECT_GT(nc_total / seeds, 0.5);
  EXPECT_GE(df_total / seeds, 0.0);
}

TEST(SyntheticRecoveryTest, EveryMethodRecoversNoiselessNetwork) {
  // At eta = 0 the noisy graph IS the truth; any sane method at the exact
  // budget recovers it perfectly (score ties aside).
  const auto truth = GenerateBarabasiAlbert(
      {.num_nodes = 100, .average_degree = 3.0, .seed = 7});
  ASSERT_TRUE(truth.ok());
  const auto noisy = ApplySectionVANoise(*truth, 0.0, 8);
  ASSERT_TRUE(noisy.ok());
  for (const Method m :
       {Method::kNoiseCorrected, Method::kNaiveThreshold}) {
    EXPECT_DOUBLE_EQ(RecoveryFor(m, *noisy), 1.0) << MethodName(m);
  }
}

// ---------------------------------------------------------------------------
// Mini Table II / Fig. 7 / Fig. 8: country-suite pipeline.
// ---------------------------------------------------------------------------

class CountryPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    static Result<CountrySuite> holder = GenerateCountrySuite(
        /*seed=*/4242, /*num_years=*/2, /*num_countries=*/60);
    ASSERT_TRUE(holder.ok()) << holder.status().ToString();
    suite_ = &*holder;
  }
  static const CountrySuite* suite_;
};

const CountrySuite* CountryPipelineTest::suite_ = nullptr;

TEST_F(CountryPipelineTest, NoiseCorrectedQualityAboveOne) {
  // The headline Table II property: restricting the gravity regression to
  // the NC backbone raises R² above the full-network baseline.
  const Graph& flight =
      suite_->network(CountryNetworkKind::kFlight).front();
  const auto predictors =
      CountryPredictors(*suite_, CountryNetworkKind::kFlight, flight);
  ASSERT_TRUE(predictors.ok());
  const auto nc = RunMethod(Method::kNoiseCorrected, flight);
  ASSERT_TRUE(nc.ok());
  const BackboneMask mask = TopShare(*nc, 0.15);
  const auto q = QualityRatio(flight, predictors->columns, mask);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_GT(q->ratio, 1.0);
}

TEST_F(CountryPipelineTest, NoiseCorrectedQualityBeatsNaive) {
  const Graph& trade =
      suite_->network(CountryNetworkKind::kTrade).front();
  const auto predictors =
      CountryPredictors(*suite_, CountryNetworkKind::kTrade, trade);
  ASSERT_TRUE(predictors.ok());
  const int64_t budget = trade.num_edges() / 8;
  std::map<Method, double> ratio;
  for (const Method m :
       {Method::kNoiseCorrected, Method::kNaiveThreshold}) {
    const auto mask = BudgetedBackbone(m, trade, budget);
    ASSERT_TRUE(mask.ok());
    const auto q = QualityRatio(trade, predictors->columns, *mask);
    ASSERT_TRUE(q.ok());
    ratio[m] = q->ratio;
  }
  EXPECT_GT(ratio[Method::kNoiseCorrected],
            ratio[Method::kNaiveThreshold]);
}

TEST_F(CountryPipelineTest, BackbonesAreStable) {
  // Paper Fig. 8: all methods stay above ~0.84 on these data.
  const TemporalNetwork& migration =
      suite_->network(CountryNetworkKind::kMigration);
  const auto mean = MeanStability(migration, [](const Graph& year) {
    Result<ScoredEdges> nc = RunMethod(Method::kNoiseCorrected, year);
    if (!nc.ok()) return Result<BackboneMask>(nc.status());
    return Result<BackboneMask>(TopShare(*nc, 0.2));
  });
  ASSERT_TRUE(mean.ok()) << mean.status().ToString();
  EXPECT_GT(*mean, 0.7);
}

TEST_F(CountryPipelineTest, CoverageDegradesGracefully) {
  const Graph& business =
      suite_->network(CountryNetworkKind::kBusiness).front();
  const auto nc = RunMethod(Method::kNoiseCorrected, business);
  ASSERT_TRUE(nc.ok());
  double previous = 1.1;
  for (const double share : {0.5, 0.2, 0.05}) {
    const auto coverage = CoverageOfMask(business, TopShare(*nc, share));
    ASSERT_TRUE(coverage.ok());
    EXPECT_LE(*coverage, previous + 1e-12);
    EXPECT_GT(*coverage, 0.0);
    previous = *coverage;
  }
}

TEST_F(CountryPipelineTest, RoundTripThroughCsvPreservesScores) {
  // Full-circle: serialize a network, re-read it, and verify the NC scores
  // are bit-identical (the library's persistence path is lossless for the
  // score computation).
  const Graph& cs =
      suite_->network(CountryNetworkKind::kCountrySpace).front();
  const std::string serialized = EdgeListToString(cs);
  EdgeListReadOptions options;
  options.directedness = Directedness::kUndirected;
  const auto reloaded = ReadEdgeListCsvFromString(serialized, options);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->num_edges(), cs.num_edges());
  const auto original_scores = RunMethod(Method::kNoiseCorrected, cs);
  const auto reloaded_scores =
      RunMethod(Method::kNoiseCorrected, *reloaded);
  ASSERT_TRUE(original_scores.ok());
  ASSERT_TRUE(reloaded_scores.ok());
  // Edge order may differ (label interning order); compare via lookup.
  for (EdgeId id = 0; id < cs.num_edges(); ++id) {
    const Edge& e = cs.edge(id);
    const NodeId src = *reloaded->FindLabel(cs.LabelOf(e.src));
    const NodeId dst = *reloaded->FindLabel(cs.LabelOf(e.dst));
    const EdgeId rid = reloaded->FindEdge(src, dst);
    ASSERT_GE(rid, 0);
    EXPECT_DOUBLE_EQ(reloaded_scores->at(rid).score,
                     original_scores->at(id).score);
  }
}

// ---------------------------------------------------------------------------
// Mini Sec. VI: occupation case study direction.
// ---------------------------------------------------------------------------

TEST(OccupationPipelineTest, BackboneImprovesFlowPrediction) {
  OccupationWorldOptions options;
  options.num_occupations = 100;
  options.num_skills = 60;
  options.num_classes = 5;
  options.minor_groups_per_class = 2;
  options.num_generic_skills = 10;
  options.seed = 33;
  const auto world = GenerateOccupationWorld(options);
  ASSERT_TRUE(world.ok());

  // Score the co-occurrence network with NC, keep the top pairs, and
  // restrict the flow regression to flows between those pairs.
  const auto nc = RunMethod(Method::kNoiseCorrected, world->co_occurrence);
  ASSERT_TRUE(nc.ok());
  const BackboneMask co_mask = TopShare(*nc, 0.25);

  // Translate the co-occurrence mask into a flow-edge mask.
  std::vector<bool> flow_mask(
      static_cast<size_t>(world->flows.num_edges()), false);
  int64_t selected = 0;
  for (EdgeId id = 0; id < world->flows.num_edges(); ++id) {
    const Edge& e = world->flows.edge(id);
    const EdgeId co_id = world->co_occurrence.FindEdge(e.src, e.dst);
    if (co_id >= 0 && co_mask.keep[static_cast<size_t>(co_id)]) {
      flow_mask[static_cast<size_t>(id)] = true;
      ++selected;
    }
  }
  ASSERT_GT(selected, 100);

  const auto all_pairs =
      FlowPredictionCorrelation(*world, std::vector<bool>());
  const auto backbone_pairs = FlowPredictionCorrelation(*world, flow_mask);
  ASSERT_TRUE(all_pairs.ok());
  ASSERT_TRUE(backbone_pairs.ok());
  // Sec. VI's direction: the flows between backbone pairs are easier to
  // predict than flows between all pairs.
  EXPECT_GT(*backbone_pairs, *all_pairs);
}

}  // namespace
}  // namespace netbone
