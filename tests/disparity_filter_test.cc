// Tests for the Disparity Filter baseline (Serrano et al.; paper Sec.
// III-B): the closed-form p-value, endpoint rules, and null-model
// behaviour on uniform and skewed stars.

#include "core/disparity_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/filter.h"
#include "graph/builder.h"

namespace netbone {
namespace {

TEST(DisparityPValueTest, ClosedForm) {
  // alpha = (1 - x)^(k-1).
  EXPECT_DOUBLE_EQ(DisparityPValue(0.5, 3), 0.25);
  EXPECT_DOUBLE_EQ(DisparityPValue(0.2, 5), std::pow(0.8, 4));
  EXPECT_DOUBLE_EQ(DisparityPValue(0.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(DisparityPValue(1.0, 2), 0.0);
}

TEST(DisparityPValueTest, DegreeOneIsNeverSignificant) {
  // k = 1: the node has a single edge carrying its whole strength; the
  // null model cannot reject (p-value 1).
  EXPECT_DOUBLE_EQ(DisparityPValue(1.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(DisparityPValue(0.3, 1), 1.0);
  EXPECT_DOUBLE_EQ(DisparityPValue(0.0, 0), 1.0);
}

TEST(DisparityPValueTest, SharesAreClamped) {
  EXPECT_DOUBLE_EQ(DisparityPValue(1.5, 3), 0.0);
  EXPECT_DOUBLE_EQ(DisparityPValue(-0.5, 3), 1.0);
}

TEST(DisparityPValueTest, MonotoneInShareAndDegree) {
  // Higher share => lower p-value; higher degree at the same share =>
  // lower p-value (more competitors make a big share more surprising).
  EXPECT_LT(DisparityPValue(0.6, 4), DisparityPValue(0.3, 4));
  EXPECT_LT(DisparityPValue(0.3, 8), DisparityPValue(0.3, 4));
}

TEST(DisparityFilterTest, UniformStarSharesAreInsignificant) {
  // A hub distributing its strength uniformly over k edges: every edge
  // has exactly the expected share, alpha = (1 - 1/k)^(k-1), score well
  // below 1.
  GraphBuilder builder(Directedness::kUndirected);
  for (NodeId leaf = 1; leaf <= 6; ++leaf) builder.AddEdge(0, leaf, 5.0);
  const Graph g = *builder.Build();
  const auto df = DisparityFilter(g);
  ASSERT_TRUE(df.ok());
  const double expected_score = 1.0 - std::pow(1.0 - 1.0 / 6.0, 5);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_NEAR(df->at(id).score, expected_score, 1e-12);
  }
}

TEST(DisparityFilterTest, DominantEdgeIsSignificant) {
  // One edge carries 95% of the hub's strength.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 95.0);
  for (NodeId leaf = 2; leaf <= 6; ++leaf) builder.AddEdge(0, leaf, 1.0);
  const Graph g = *builder.Build();
  const auto df = DisparityFilter(g);
  ASSERT_TRUE(df.ok());
  const EdgeId dominant = g.FindEdge(0, 1);
  EXPECT_GT(df->at(dominant).score, 0.99);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    if (id == dominant) continue;
    EXPECT_LT(df->at(id).score, df->at(dominant).score);
  }
}

TEST(DisparityFilterTest, EitherRuleTakesMaxOfEndpoints) {
  // Directed edge where the source spreads thin but the target
  // concentrates: the edge must be rescued by the receiving side.
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 9, 10.0);  // the edge under test
  // Source 0 has many equally strong out-edges -> insignificant as emitter.
  for (NodeId t = 1; t <= 8; ++t) builder.AddEdge(0, t, 10.0);
  // Target 9 receives almost everything through 0 -> significant as
  // receiver (add a couple of weak competitors).
  builder.AddEdge(1, 9, 0.5);
  builder.AddEdge(2, 9, 0.5);
  const Graph g = *builder.Build();

  DisparityFilterOptions source_only;
  source_only.endpoint_rule = DisparityEndpointRule::kSource;
  DisparityFilterOptions either;
  either.endpoint_rule = DisparityEndpointRule::kEither;
  DisparityFilterOptions both;
  both.endpoint_rule = DisparityEndpointRule::kBoth;

  const EdgeId id = g.FindEdge(0, 9);
  const auto s = DisparityFilter(g, source_only);
  const auto e = DisparityFilter(g, either);
  const auto b = DisparityFilter(g, both);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(e->at(id).score, s->at(id).score);
  EXPECT_GE(e->at(id).score, b->at(id).score);
  // kBoth == min, kEither == max; source-only sits between or equal.
  EXPECT_DOUBLE_EQ(b->at(id).score,
                   std::min(s->at(id).score, e->at(id).score));
}

TEST(DisparityFilterTest, PendantEdgeRescuedByOtherEndpoint) {
  // A pendant node (degree 1) cannot certify its only edge, but the hub
  // side can when the edge dominates the hub's strength.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 100.0);  // pendant node 1; dominant for hub 0
  builder.AddEdge(0, 2, 1.0);
  builder.AddEdge(0, 3, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph g = *builder.Build();
  const auto df = DisparityFilter(g);
  ASSERT_TRUE(df.ok());
  EXPECT_GT(df->at(g.FindEdge(0, 1)).score, 0.9);
}

TEST(DisparityFilterTest, ScoresAreInUnitInterval) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(1, 2, 0.25);
  builder.AddEdge(2, 0, 17.0);
  builder.AddEdge(0, 2, 1.0);
  const Graph g = *builder.Build();
  const auto df = DisparityFilter(g);
  ASSERT_TRUE(df.ok());
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    EXPECT_GE(df->at(id).score, 0.0);
    EXPECT_LE(df->at(id).score, 1.0);
  }
}

TEST(DisparityFilterTest, FailsOnEmptyGraph) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.ReserveNodes(3);
  EXPECT_FALSE(DisparityFilter(*builder.Build()).ok());
}

TEST(DisparityFilterTest, HasNoSdev) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  const auto df = DisparityFilter(*builder.Build());
  ASSERT_TRUE(df.ok());
  EXPECT_FALSE(df->has_sdev());
}

// Property sweep: for a two-edge node, score must match the closed form
// 1 - (1 - share) regardless of the weights.
class DisparityShareSweep : public ::testing::TestWithParam<double> {};

TEST_P(DisparityShareSweep, TwoEdgeNodeClosedForm) {
  const double w = GetParam();
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, w);        // edge under test at node 0
  builder.AddEdge(0, 2, 10.0);     // competitor
  // Bulk up nodes 1 and 2 so node 0's perspective is the binding one.
  for (NodeId other = 3; other <= 12; ++other) {
    builder.AddEdge(1, other, 50.0);
    builder.AddEdge(2, other, 50.0);
  }
  const Graph g = *builder.Build();
  const auto df = DisparityFilter(g);
  ASSERT_TRUE(df.ok());
  const double share = w / (w + 10.0);
  const double from_zero = 1.0 - DisparityPValue(share, 2);
  // The edge's score is at least the node-0 test (kEither takes the max).
  EXPECT_GE(df->at(g.FindEdge(0, 1)).score, from_zero - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(WeightSweep, DisparityShareSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
                                           20.0, 100.0));

}  // namespace
}  // namespace netbone
