// Tests for the serving subsystem (src/service/): graph fingerprint
// stability across label insertion order, content-addressed dedup and
// LRU-under-byte-budget eviction (with in-flight pins) in the GraphStore,
// LRU eviction order under the ScoreCache byte budget, in-flight
// coalescing (a single underlying score per key no matter how many
// concurrent identical requests), negative caching of scoring failures,
// warm-path zero-sort / zero-rescore behavior, engine determinism across
// thread counts and against the uncached library path, and the
// byte-bound trim of the HSS workspace pool.

#include "service/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/random.h"
#include "core/filter.h"
#include "core/high_salience_skeleton.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "eval/coverage.h"
#include "eval/stability.h"
#include "eval/sweep_metrics.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/delta.h"
#include "service/fault_injection.h"
#include "service/graph_store.h"
#include "service/score_cache.h"

namespace netbone {
namespace {

using LabeledEdge = std::tuple<std::string, std::string, double>;

Graph BuildLabeled(const std::vector<LabeledEdge>& edges,
                   Directedness directedness = Directedness::kUndirected) {
  GraphBuilder builder(directedness);
  for (const auto& [src, dst, weight] : edges) {
    builder.AddLabeledEdge(src, dst, weight);
  }
  return *builder.Build();
}

Graph BenchGraph(uint64_t seed = 7, NodeId num_nodes = 300) {
  return *GenerateErdosRenyi(
      {.num_nodes = num_nodes, .average_degree = 3.0, .seed = seed});
}

// ---------------------------------------------------------------------------
// GraphFingerprint.
// ---------------------------------------------------------------------------

TEST(GraphFingerprintTest, StableAcrossLabelInsertionOrder) {
  // Same labeled network, interned in three different orders (the third
  // also flips endpoint order within an edge): the dense node ids differ,
  // the content does not.
  const Graph a =
      BuildLabeled({{"ann", "bob", 1.0}, {"bob", "cat", 2.0},
                    {"cat", "dee", 3.0}});
  const Graph b =
      BuildLabeled({{"cat", "dee", 3.0}, {"ann", "bob", 1.0},
                    {"bob", "cat", 2.0}});
  const Graph c =
      BuildLabeled({{"dee", "cat", 3.0}, {"cat", "bob", 2.0},
                    {"bob", "ann", 1.0}});
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(c));

  // Any content change moves the fingerprint.
  const Graph weight_changed =
      BuildLabeled({{"ann", "bob", 1.5}, {"bob", "cat", 2.0},
                    {"cat", "dee", 3.0}});
  const Graph edge_added =
      BuildLabeled({{"ann", "bob", 1.0}, {"bob", "cat", 2.0},
                    {"cat", "dee", 3.0}, {"dee", "ann", 4.0}});
  const Graph label_changed =
      BuildLabeled({{"ann", "bob", 1.0}, {"bob", "cat", 2.0},
                    {"cat", "eve", 3.0}});
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(weight_changed));
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(edge_added));
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(label_changed));
}

TEST(GraphFingerprintTest, DirectedLabeledRespectsDirection) {
  const Graph ab = BuildLabeled({{"a", "b", 1.0}, {"b", "c", 2.0}},
                                Directedness::kDirected);
  const Graph ab2 = BuildLabeled({{"b", "c", 2.0}, {"a", "b", 1.0}},
                                 Directedness::kDirected);
  const Graph reversed = BuildLabeled({{"b", "a", 1.0}, {"c", "b", 2.0}},
                                      Directedness::kDirected);
  EXPECT_EQ(GraphFingerprint(ab), GraphFingerprint(ab2));
  EXPECT_NE(GraphFingerprint(ab), GraphFingerprint(reversed));
}

TEST(GraphFingerprintTest, UnlabeledCanonicalTableIsOrderFree) {
  GraphBuilder b1(Directedness::kUndirected);
  b1.AddEdge(0, 1, 1.0);
  b1.AddEdge(1, 2, 2.0);
  GraphBuilder b2(Directedness::kUndirected);
  b2.AddEdge(2, 1, 2.0);  // flipped + reordered: canonicalization absorbs
  b2.AddEdge(1, 0, 1.0);
  EXPECT_EQ(GraphFingerprint(*b1.Build()), GraphFingerprint(*b2.Build()));

  GraphBuilder b3(Directedness::kUndirected);
  b3.AddEdge(0, 1, 1.0);
  b3.AddEdge(1, 2, 2.5);
  EXPECT_NE(GraphFingerprint(*b1.Build()), GraphFingerprint(*b3.Build()));
}

TEST(GraphFingerprintTest, IsolatesChangeTheFingerprint) {
  GraphBuilder b1(Directedness::kUndirected);
  b1.AddEdge(0, 1, 1.0);
  GraphBuilder b2(Directedness::kUndirected);
  b2.AddEdge(0, 1, 1.0);
  b2.ReserveNodes(5);
  EXPECT_NE(GraphFingerprint(*b1.Build()), GraphFingerprint(*b2.Build()));
}

// ---------------------------------------------------------------------------
// GraphStore.
// ---------------------------------------------------------------------------

TEST(GraphStoreTest, DedupesIdenticalContent) {
  GraphStore store;
  const StoredGraph first = store.Intern(BenchGraph(/*seed=*/11));
  const StoredGraph again = store.Intern(BenchGraph(/*seed=*/11));
  const StoredGraph other = store.Intern(BenchGraph(/*seed=*/12));

  EXPECT_EQ(first.fingerprint, again.fingerprint);
  EXPECT_EQ(first.graph.get(), again.graph.get());  // one resident copy
  EXPECT_NE(first.fingerprint, other.fingerprint);

  const GraphStore::Stats stats = store.stats();
  EXPECT_EQ(stats.graphs, 2);
  EXPECT_EQ(stats.inserts, 2);
  EXPECT_EQ(stats.dedup_hits, 1);
  EXPECT_GT(stats.resident_bytes, 0);

  EXPECT_EQ(store.Find(first.fingerprint).get(), first.graph.get());
  EXPECT_EQ(store.Find(0xdeadbeef), nullptr);
  EXPECT_TRUE(store.Erase(first.fingerprint));
  EXPECT_FALSE(store.Erase(first.fingerprint));
  EXPECT_EQ(store.Find(first.fingerprint), nullptr);
  // Outstanding handles stay valid after eviction.
  EXPECT_EQ(first.graph->num_nodes(), 300);
}

TEST(GraphStoreTest, LruEvictionUnderByteBudgetSkipsPinned) {
  // Three same-shape graphs -> three same-size entries; budget admits two.
  const int64_t one = ApproxGraphBytes(BenchGraph(61));
  GraphStore store(2 * one + one / 2);
  const StoredGraph ga = store.Intern(BenchGraph(61));
  const StoredGraph gb = store.Intern(BenchGraph(62));
  EXPECT_EQ(store.stats().graphs, 2);
  EXPECT_EQ(store.stats().evictions, 0);

  // Touch A so B becomes least-recently-used, then intern C: B must go.
  EXPECT_NE(store.Find(ga.fingerprint), nullptr);
  const StoredGraph gc = store.Intern(BenchGraph(63));
  EXPECT_EQ(store.stats().graphs, 2);
  EXPECT_EQ(store.stats().evictions, 1);
  EXPECT_EQ(store.Find(gb.fingerprint), nullptr);  // evicted
  EXPECT_NE(store.Find(gc.fingerprint), nullptr);
  // The evicted handle stays valid; only residency is gone.
  EXPECT_EQ(gb.graph->num_nodes(), 300);

  // A pinned graph survives any budget; the unpinned one is shed first.
  store.Pin(ga.fingerprint);
  store.set_byte_budget(1);
  EXPECT_NE(store.Find(ga.fingerprint), nullptr);  // pinned: kept
  EXPECT_EQ(store.Find(gc.fingerprint), nullptr);  // unpinned: evicted
  EXPECT_EQ(store.stats().evictions, 2);

  // Unpinning makes it evictable on the next trim.
  store.Unpin(ga.fingerprint);
  store.set_byte_budget(1);
  EXPECT_EQ(store.Find(ga.fingerprint), nullptr);
  EXPECT_EQ(store.stats().graphs, 0);
  EXPECT_EQ(store.stats().evictions, 3);
}

// ---------------------------------------------------------------------------
// ScoreCache.
// ---------------------------------------------------------------------------

std::shared_ptr<const CachedScore> ScoreFor(
    const std::shared_ptr<const Graph>& graph) {
  Result<ScoredEdges> scored =
      RunMethod(Method::kNaiveThreshold, *graph);
  EXPECT_TRUE(scored.ok());
  return CachedScore::Build(graph, std::move(*scored));
}

TEST(ScoreCacheTest, LruEvictionOrderUnderByteBudget) {
  // Three same-shape graphs -> three same-size entries; budget admits two.
  GraphStore store;
  const StoredGraph ga = store.Intern(BenchGraph(21));
  const StoredGraph gb = store.Intern(BenchGraph(22));
  const StoredGraph gc = store.Intern(BenchGraph(23));
  const auto sa = ScoreFor(ga.graph);
  const auto sb = ScoreFor(gb.graph);
  const auto sc = ScoreFor(gc.graph);
  const ScoreKey ka{ga.fingerprint, Method::kNaiveThreshold, {}};
  const ScoreKey kb{gb.fingerprint, Method::kNaiveThreshold, {}};
  const ScoreKey kc{gc.fingerprint, Method::kNaiveThreshold, {}};

  ScoreCache cache(sa->bytes() + sb->bytes() + sb->bytes() / 2);
  cache.Put(ka, sa);
  cache.Put(kb, sb);
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 0);

  // Touch A so B becomes least-recently-used, then insert C: B must go.
  EXPECT_NE(cache.Get(ka), nullptr);
  cache.Put(kc, sc);
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_NE(cache.Get(ka), nullptr);
  EXPECT_NE(cache.Get(kc), nullptr);
  EXPECT_EQ(cache.Get(kb), nullptr);  // evicted

  // Entries larger than the whole budget are evicted immediately; the
  // caller's handle keeps the value usable.
  cache.set_byte_budget(1);
  EXPECT_EQ(cache.stats().entries, 0);
  cache.Put(ka, sa);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_GT(sa->order().size(), 0);

  const ScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);    // ka bump + ka and kc lookups
  EXPECT_EQ(stats.misses, 1);  // the evicted kb lookup
}

TEST(ScoreCacheTest, KeySeparatesMethodAndOptions) {
  GraphStore store;
  const StoredGraph g = store.Intern(BenchGraph(31));
  const auto score = ScoreFor(g.graph);
  ScoreCache cache(/*byte_budget=*/0);  // unlimited

  const ScoreKey nt{g.fingerprint, Method::kNaiveThreshold, {}};
  ScoreKey sampled = nt;
  sampled.method = Method::kHighSalienceSkeleton;
  sampled.options.hss_source_sample_size = 64;
  cache.Put(nt, score);
  EXPECT_NE(cache.Get(nt), nullptr);
  EXPECT_EQ(cache.Get(sampled), nullptr);
  ScoreKey other_seed = sampled;
  other_seed.options.hss_sample_seed = 43;
  EXPECT_FALSE(sampled == other_seed);
  EXPECT_FALSE(nt == sampled);
}

// ---------------------------------------------------------------------------
// BackboneEngine: warm path, coalescing, determinism.
// ---------------------------------------------------------------------------

TEST(BackboneEngineTest, WarmRequestsPerformZeroSortsAndZeroRescoring) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(41));

  BackboneRequest request;
  request.graph = graph;
  request.method = Method::kNoiseCorrected;
  request.kind = RequestKind::kTopShare;
  request.share = 0.2;
  const Result<BackboneResponse> cold = engine.Execute(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  EXPECT_EQ(engine.stats().scores_computed, 1);

  // Every further request on the cached (graph, method) key — whatever
  // the threshold rule — must sort and score exactly zero times.
  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  BackboneRequest top_k = request;
  top_k.kind = RequestKind::kTopK;
  top_k.k = 37;
  BackboneRequest threshold = request;
  threshold.kind = RequestKind::kScoreThreshold;
  threshold.threshold = 0.5;
  BackboneRequest grow = request;
  grow.kind = RequestKind::kGrowUntilConnected;
  BackboneRequest coverage = request;
  coverage.kind = RequestKind::kCoveragePoint;
  coverage.share = 0.4;
  BackboneRequest sweep = request;
  sweep.kind = RequestKind::kSweep;
  sweep.shares = {0.1, 0.2, 0.5, 1.0};
  for (const BackboneRequest* warm :
       {&request, &top_k, &threshold, &grow, &coverage, &sweep}) {
    const Result<BackboneResponse> response = engine.Execute(*warm);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->cache_hit);
  }
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before, 0);
  EXPECT_EQ(engine.stats().scores_computed, 1);
  EXPECT_EQ(engine.stats().cache.hits, 6);
}

TEST(BackboneEngineTest, IrrelevantScoreOptionsShareOneCacheEntry) {
  // HSS sampling knobs cannot change a NoiseCorrected score, so requests
  // differing only in those knobs must resolve to one cache entry
  // (MakeScoreKey canonicalization).
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(40));
  BackboneRequest request;
  request.graph = graph;
  request.method = Method::kNoiseCorrected;
  request.kind = RequestKind::kTopShare;
  request.share = 0.2;
  request.score_options.hss_sample_seed = 7;
  ASSERT_TRUE(engine.Execute(request).ok());
  request.score_options.hss_sample_seed = 99;
  request.score_options.hss_source_sample_size = 16;
  const Result<BackboneResponse> warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(engine.stats().scores_computed, 1);
}

TEST(BackboneEngineTest, ResponsesMatchTheUncachedPath) {
  const Graph graph = BenchGraph(42);
  Result<ScoredEdges> scored = RunMethod(Method::kDisparityFilter, graph);
  ASSERT_TRUE(scored.ok());

  BackboneEngine engine;
  const uint64_t fingerprint = engine.AddGraph(BenchGraph(42));

  BackboneRequest request;
  request.graph = fingerprint;
  request.method = Method::kDisparityFilter;

  // TopShare.
  request.kind = RequestKind::kTopShare;
  request.share = 0.3;
  Result<BackboneResponse> response = engine.Execute(request);
  ASSERT_TRUE(response.ok());
  const BackboneMask top_share = TopShare(*scored, 0.3);
  EXPECT_EQ(response->kept_edges, MaskToEdgeIds(top_share));
  EXPECT_EQ(response->kept, top_share.kept);
  EXPECT_EQ(response->coverage, *CoverageOfMask(graph, top_share));

  // TopK.
  request.kind = RequestKind::kTopK;
  request.k = 55;
  response = engine.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kept_edges, MaskToEdgeIds(TopK(*scored, 55)));

  // Score threshold (strictly-above semantics, like FilterByScore).
  request.kind = RequestKind::kScoreThreshold;
  request.threshold = 0.4;
  response = engine.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kept_edges,
            MaskToEdgeIds(FilterByScore(*scored, 0.4)));

  // GrowUntilConnected.
  request.kind = RequestKind::kGrowUntilConnected;
  response = engine.Execute(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kept_edges,
            MaskToEdgeIds(GrowUntilConnected(*scored)));

  // Sweep: element-wise identical to the batch CoverageSweep.
  request.kind = RequestKind::kSweep;
  request.shares = {0.1, 0.25, 0.5, 0.75, 1.0};
  response = engine.Execute(request);
  ASSERT_TRUE(response.ok());
  const Result<std::vector<double>> reference =
      CoverageSweep(*scored, request.shares);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(response->sweep.size(), reference->size());
  for (size_t p = 0; p < reference->size(); ++p) {
    EXPECT_EQ(response->sweep[p].coverage, (*reference)[p]);
  }
}

TEST(BackboneEngineTest, UnknownFingerprintIsNotFound) {
  BackboneEngine engine;
  BackboneRequest request;
  request.graph = 0x1234;
  const Result<BackboneResponse> response = engine.Execute(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsNotFound());
}

TEST(BackboneEngineTest, CoalescesConcurrentIdenticalRequests) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(43, /*num_nodes=*/800));

  BackboneRequest request;
  request.graph = graph;
  request.method = Method::kHighSalienceSkeleton;  // slow enough to overlap
  request.kind = RequestKind::kTopShare;
  request.share = 0.25;

  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  constexpr int kThreads = 8;
  std::vector<std::optional<Result<BackboneResponse>>> responses(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { responses[static_cast<size_t>(t)] = engine.Execute(request); });
    }
    for (std::thread& t : threads) t.join();
  }

  // However the executions interleaved (coalesced onto the in-flight
  // score or served from the cache), the method ran exactly once.
  EXPECT_EQ(engine.stats().scores_computed, 1);
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before, 1);
  ASSERT_TRUE(responses[0]->ok());
  const std::vector<EdgeId>& kept = (*responses[0])->kept_edges;
  EXPECT_GT(kept.size(), 0u);
  for (const auto& response : responses) {
    ASSERT_TRUE(response->ok());
    EXPECT_EQ((*response)->kept_edges, kept);
  }
}

TEST(BackboneEngineTest, BatchCoalescesDuplicateKeys) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(44));

  std::vector<BackboneRequest> batch;
  for (int i = 0; i < 6; ++i) {
    BackboneRequest request;
    request.graph = graph;
    request.method = Method::kNoiseCorrected;
    request.kind = RequestKind::kTopShare;
    request.share = 0.1 * (i + 1);  // different points, one key
    batch.push_back(request);
  }
  BackboneRequest other = batch.front();
  other.method = Method::kNaiveThreshold;
  batch.push_back(other);

  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  const std::vector<Result<BackboneResponse>> results =
      engine.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  // Two distinct keys -> two scores, two sorts, no matter the batch size.
  EXPECT_EQ(engine.stats().scores_computed, 2);
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before, 2);
  EXPECT_EQ(engine.stats().requests, static_cast<int64_t>(batch.size()));
}

TEST(BackboneEngineTest, DeterministicAcrossThreadCounts) {
  std::optional<std::vector<Result<BackboneResponse>>> reference;
  for (const int threads : {1, 2, 5}) {
    BackboneEngineOptions options;
    options.num_threads = threads;
    BackboneEngine engine(options);
    const uint64_t graph = engine.AddGraph(BenchGraph(45));

    std::vector<BackboneRequest> batch;
    for (const Method method :
         {Method::kNoiseCorrected, Method::kDisparityFilter,
          Method::kMaximumSpanningTree, Method::kNaiveThreshold}) {
      BackboneRequest request;
      request.graph = graph;
      request.method = method;
      request.kind = RequestKind::kTopShare;
      request.share = 0.3;
      batch.push_back(request);
      request.kind = RequestKind::kSweep;
      request.shares = {0.2, 0.6, 1.0};
      batch.push_back(request);
    }
    std::vector<Result<BackboneResponse>> results =
        engine.ExecuteBatch(batch);
    if (!reference.has_value()) {
      reference = std::move(results);
      continue;
    }
    ASSERT_EQ(results.size(), reference->size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(results[i]->kept_edges, (*reference)[i]->kept_edges);
      EXPECT_EQ(results[i]->kept, (*reference)[i]->kept);
      EXPECT_EQ(results[i]->coverage, (*reference)[i]->coverage);
      EXPECT_EQ(results[i]->weight_share, (*reference)[i]->weight_share);
      EXPECT_EQ(results[i]->sweep, (*reference)[i]->sweep);
    }
  }
}

TEST(BackboneEngineTest, AsyncSubmitMatchesSync) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(46));

  std::vector<BackboneRequest> batch;
  for (const double share : {0.1, 0.4, 0.8}) {
    BackboneRequest request;
    request.graph = graph;
    request.method = Method::kDisparityFilter;
    request.kind = RequestKind::kTopShare;
    request.share = share;
    batch.push_back(request);
  }

  std::future<std::vector<Result<BackboneResponse>>> future =
      engine.Submit(batch);
  const std::vector<Result<BackboneResponse>> async = future.get();
  const std::vector<Result<BackboneResponse>> sync =
      engine.ExecuteBatch(batch);
  ASSERT_EQ(async.size(), sync.size());
  for (size_t i = 0; i < async.size(); ++i) {
    ASSERT_TRUE(async[i].ok());
    ASSERT_TRUE(sync[i].ok());
    EXPECT_EQ(async[i]->kept_edges, sync[i]->kept_edges);
    EXPECT_EQ(async[i]->coverage, sync[i]->coverage);
  }
  EXPECT_EQ(engine.stats().submitted_batches, 1);
  // The async batch scored DF once; the sync replay was all warm.
  EXPECT_EQ(engine.stats().scores_computed, 1);
}

TEST(BackboneEngineTest, StabilityPointMatchesDirectEvaluation) {
  const Graph year0 = BenchGraph(47);
  const Graph year1 = BenchGraph(48);  // same node universe, new weights

  BackboneEngine engine;
  const uint64_t f0 = engine.AddGraph(BenchGraph(47));
  const uint64_t f1 = engine.AddGraph(BenchGraph(48));

  BackboneRequest request;
  request.graph = f0;
  request.next_graph = f1;
  request.method = Method::kNoiseCorrected;
  request.kind = RequestKind::kStabilityPoint;
  request.share = 0.5;
  const Result<BackboneResponse> response = engine.Execute(request);
  ASSERT_TRUE(response.ok());

  Result<ScoredEdges> scored = RunMethod(Method::kNoiseCorrected, year0);
  ASSERT_TRUE(scored.ok());
  const BackboneMask mask = TopShare(*scored, 0.5);
  const Result<double> direct = Stability(year0, year1, mask);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response->stability, *direct);
  EXPECT_EQ(response->kept, mask.kept);
}

TEST(BackboneEngineTest, NegativeCacheSuppressesRepeatedFailures) {
  BackboneEngine engine;  // default negative_ttl: 30s
  const uint64_t graph = engine.AddGraph(BenchGraph(70));

  // The HSS cost guard rejects this deterministically: |V| * |E| > 1.
  BackboneRequest request;
  request.graph = graph;
  request.method = Method::kHighSalienceSkeleton;
  request.score_options.hss_max_cost = 1;
  request.kind = RequestKind::kTopShare;
  request.share = 0.5;

  const Result<BackboneResponse> first = engine.Execute(request);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsFailedPrecondition());
  EXPECT_EQ(engine.stats().scores_computed, 1);
  EXPECT_EQ(engine.stats().negative_hits, 0);
  EXPECT_EQ(engine.stats().negative_entries, 1);

  // Hammering the bad key is answered from the negative cache: the same
  // error, zero further scoring attempts.
  for (int i = 0; i < 3; ++i) {
    const Result<BackboneResponse> repeat = engine.Execute(request);
    ASSERT_FALSE(repeat.ok());
    EXPECT_EQ(repeat.status().ToString(), first.status().ToString());
  }
  // A batch of two identical bad requests collapses to one key — one
  // negative hit answers both.
  const auto batch_results =
      engine.ExecuteBatch(std::vector<BackboneRequest>{request, request});
  for (const auto& result : batch_results) EXPECT_FALSE(result.ok());
  EXPECT_EQ(engine.stats().scores_computed, 1);
  EXPECT_EQ(engine.stats().negative_hits, 4);

  // Clearing the negative cache re-arms the key.
  engine.ClearNegativeCache();
  EXPECT_EQ(engine.stats().negative_entries, 0);
  ASSERT_FALSE(engine.Execute(request).ok());
  EXPECT_EQ(engine.stats().scores_computed, 2);
}

TEST(BackboneEngineTest, NegativeTtlZeroDisablesNegativeCaching) {
  BackboneEngineOptions options;
  options.negative_ttl = std::chrono::milliseconds(0);
  BackboneEngine engine(options);
  const uint64_t graph = engine.AddGraph(BenchGraph(71));

  BackboneRequest request;
  request.graph = graph;
  request.method = Method::kHighSalienceSkeleton;
  request.score_options.hss_max_cost = 1;
  request.kind = RequestKind::kTopShare;
  request.share = 0.5;

  ASSERT_FALSE(engine.Execute(request).ok());
  ASSERT_FALSE(engine.Execute(request).ok());
  // Pre-PR-4 behavior: every request re-attempts the scoring.
  EXPECT_EQ(engine.stats().scores_computed, 2);
  EXPECT_EQ(engine.stats().negative_hits, 0);
  EXPECT_EQ(engine.stats().negative_entries, 0);
}

TEST(BackboneEngineTest, GraphByteBudgetEvictsColdGraphs) {
  BackboneEngineOptions options;
  options.graph_byte_budget =
      2 * ApproxGraphBytes(BenchGraph(72)) +
      ApproxGraphBytes(BenchGraph(72)) / 2;  // admits two same-shape graphs
  BackboneEngine engine(options);
  const uint64_t f1 = engine.AddGraph(BenchGraph(72));
  const uint64_t f2 = engine.AddGraph(BenchGraph(73));
  const uint64_t f3 = engine.AddGraph(BenchGraph(74));
  EXPECT_EQ(engine.stats().graphs.graphs, 2);
  EXPECT_EQ(engine.stats().graphs.evictions, 1);

  // The least-recently-used fingerprint stopped resolving...
  BackboneRequest request;
  request.method = Method::kNaiveThreshold;
  request.kind = RequestKind::kTopShare;
  request.share = 0.5;
  request.graph = f1;
  const Result<BackboneResponse> evicted = engine.Execute(request);
  ASSERT_FALSE(evicted.ok());
  EXPECT_TRUE(evicted.status().IsNotFound());

  // ... the resident ones still serve, and re-interning revives f1.
  for (const uint64_t resident : {f2, f3}) {
    request.graph = resident;
    EXPECT_TRUE(engine.Execute(request).ok());
  }
  EXPECT_EQ(engine.AddGraph(BenchGraph(72)), f1);
  request.graph = f1;
  EXPECT_TRUE(engine.Execute(request).ok());
}

TEST(BackboneEngineTest, DedupesResubmittedGraphs) {
  BackboneEngine engine;
  const uint64_t first = engine.AddGraph(BenchGraph(49));
  const uint64_t again = engine.AddGraph(BenchGraph(49));
  EXPECT_EQ(first, again);
  EXPECT_EQ(engine.stats().graphs.graphs, 1);
  EXPECT_EQ(engine.stats().graphs.dedup_hits, 1);
}

// ---------------------------------------------------------------------------
// HSS workspace pool byte-bound trim.
// ---------------------------------------------------------------------------

TEST(HssWorkspacePoolTest, ByteBudgetTrimsRetainedWorkspaces) {
  // A big exact HSS run leaves peak-size workspaces in the pool.
  const Graph big = BenchGraph(51, /*num_nodes=*/2000);
  ASSERT_TRUE(HighSalienceSkeleton(big).ok());
  EXPECT_GT(HssWorkspacePoolRetainedBytes(), 0);

  // A tight budget sheds the peak-size scratch immediately...
  constexpr int64_t kBudget = 16 << 10;
  SetHssWorkspacePoolByteBudget(kBudget);
  EXPECT_LE(HssWorkspacePoolRetainedBytes(), kBudget);

  // ... and keeps holding on every later release: a small run may retain
  // its (small) workspaces, a big run's are dropped on release.
  const Graph small = BenchGraph(52, /*num_nodes=*/64);
  ASSERT_TRUE(HighSalienceSkeleton(small).ok());
  EXPECT_LE(HssWorkspacePoolRetainedBytes(), kBudget);
  ASSERT_TRUE(HighSalienceSkeleton(big).ok());
  EXPECT_LE(HssWorkspacePoolRetainedBytes(), kBudget);

  // Restore the default so other tests keep full reuse.
  SetHssWorkspacePoolByteBudget(0);
}

// ---------------------------------------------------------------------------
// Incremental delta rescoring through the engine.
// ---------------------------------------------------------------------------

/// The bench graph re-weighted to small integers: the paper's count-data
/// regime, where weight redistribution preserves marginals and totals
/// exactly (integer sums are exact in doubles).
Graph IntWeightGraph(uint64_t seed = 7, NodeId num_nodes = 300) {
  const Graph er = BenchGraph(seed, num_nodes);
  GraphBuilder builder(Directedness::kUndirected);
  builder.ReserveNodes(num_nodes);
  for (const Edge& e : er.edges()) {
    builder.AddEdge(e.src, e.dst, std::floor(e.weight) + 1.0);
  }
  return *builder.Build();
}

/// A noisy re-observation: moves one unit of weight between `transfers`
/// random edge pairs. Totals are bitwise preserved, so NC stays
/// incremental.
Graph TransferWeight(const Graph& base, int64_t transfers, uint64_t seed) {
  std::vector<Edge> edges(base.edges().begin(), base.edges().end());
  Rng rng(seed);
  for (int64_t t = 0; t < transfers; ++t) {
    const size_t a = static_cast<size_t>(rng.NextBounded(edges.size()));
    const size_t b = static_cast<size_t>(rng.NextBounded(edges.size()));
    if (a == b || edges[a].weight < 2.0) continue;
    edges[a].weight -= 1.0;
    edges[b].weight += 1.0;
  }
  GraphBuilder builder(base.directedness());
  builder.ReserveNodes(base.num_nodes());
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return *builder.Build();
}

BackboneRequest DeltaShareRequest(uint64_t graph, Method method) {
  BackboneRequest request;
  request.graph = graph;
  request.method = method;
  request.kind = RequestKind::kTopShare;
  request.share = 0.3;
  return request;
}

TEST(BackboneEngineTest, RevisionIsPatchedNotRescored) {
  const Graph base = IntWeightGraph();
  const Graph next = TransferWeight(base, 8, 99);

  // Reference: a lineage-less engine scores the revision cold.
  BackboneEngine cold_engine;
  const uint64_t cold_fp = cold_engine.AddGraph(next);
  const Result<BackboneResponse> cold =
      cold_engine.Execute(DeltaShareRequest(cold_fp, Method::kNoiseCorrected));
  ASSERT_TRUE(cold.ok());

  BackboneEngine engine;
  const uint64_t base_fp = engine.AddGraph(base);
  ASSERT_TRUE(
      engine.Execute(DeltaShareRequest(base_fp, Method::kNoiseCorrected))
          .ok());
  const uint64_t next_fp = engine.AddGraphRevision(next, base_fp);
  ASSERT_NE(next_fp, base_fp);

  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  const int64_t scores_before = engine.stats().scores_computed;
  const Result<BackboneResponse> patched =
      engine.Execute(DeltaShareRequest(next_fp, Method::kNoiseCorrected));
  ASSERT_TRUE(patched.ok());
  EXPECT_FALSE(patched->cache_hit);  // it did trigger a (cheap) computation

  // The incremental contract: zero global sorts, zero full rescorings,
  // one delta rescore — and a bit-identical response.
  EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before);
  EXPECT_EQ(engine.stats().scores_computed, scores_before);
  EXPECT_EQ(engine.stats().delta_rescores, 1);
  EXPECT_EQ(engine.stats().delta_fallbacks, 0);
  EXPECT_EQ(patched->kept_edges, cold->kept_edges);
  EXPECT_EQ(patched->kept, cold->kept);
  EXPECT_EQ(patched->coverage, cold->coverage);
  EXPECT_EQ(patched->weight_share, cold->weight_share);

  // The patched entry is a first-class cache entry: the next request on
  // the revision is a plain warm hit.
  const Result<BackboneResponse> warm =
      engine.Execute(DeltaShareRequest(next_fp, Method::kNoiseCorrected));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
}

TEST(BackboneEngineTest, RevisionPatchIsDeterministicAcrossThreadCounts) {
  const Graph base = IntWeightGraph(9);
  const Graph next = TransferWeight(base, 6, 123);
  std::optional<BackboneResponse> reference;
  for (const int threads : {1, 2, 4}) {
    BackboneEngineOptions options;
    options.num_threads = threads;
    BackboneEngine engine(options);
    const uint64_t base_fp = engine.AddGraph(base);
    ASSERT_TRUE(
        engine.Execute(DeltaShareRequest(base_fp, Method::kDisparityFilter))
            .ok());
    const uint64_t next_fp = engine.AddGraphRevision(next, base_fp);
    const Result<BackboneResponse> response = engine.Execute(
        DeltaShareRequest(next_fp, Method::kDisparityFilter));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(engine.stats().delta_rescores, 1);
    if (!reference.has_value()) {
      reference = *response;
    } else {
      EXPECT_EQ(response->kept_edges, reference->kept_edges);
      EXPECT_EQ(response->coverage, reference->coverage);
      EXPECT_EQ(response->weight_share, reference->weight_share);
    }
  }
}

TEST(BackboneEngineTest, LineageChainResolvesAcrossUnscoredHops) {
  // rev2 -> rev1 -> base, where rev1 was never scored: the walk must hop
  // through rev1 and patch rev2 directly from base's warm entry.
  const Graph base = IntWeightGraph(11);
  const Graph rev1 = TransferWeight(base, 4, 5);
  const Graph rev2 = TransferWeight(rev1, 4, 6);

  BackboneEngine engine;
  const uint64_t base_fp = engine.AddGraph(base);
  ASSERT_TRUE(
      engine.Execute(DeltaShareRequest(base_fp, Method::kNoiseCorrected))
          .ok());
  const uint64_t rev1_fp = engine.AddGraphRevision(rev1, base_fp);
  const uint64_t rev2_fp = engine.AddGraphRevision(rev2, rev1_fp);

  const Result<BackboneResponse> response =
      engine.Execute(DeltaShareRequest(rev2_fp, Method::kNoiseCorrected));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(engine.stats().delta_rescores, 1);

  BackboneEngine cold_engine;
  const uint64_t cold_fp = cold_engine.AddGraph(rev2);
  const Result<BackboneResponse> cold =
      cold_engine.Execute(DeltaShareRequest(cold_fp, Method::kNoiseCorrected));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(response->kept_edges, cold->kept_edges);
  EXPECT_EQ(response->coverage, cold->coverage);
}

TEST(BackboneEngineTest, GlobalMethodsFallBackToFullRescore) {
  const Graph base = IntWeightGraph(13, /*num_nodes=*/120);
  const Graph next = TransferWeight(base, 4, 7);

  BackboneEngine engine;
  const uint64_t base_fp = engine.AddGraph(base);
  ASSERT_TRUE(
      engine
          .Execute(DeltaShareRequest(base_fp, Method::kHighSalienceSkeleton))
          .ok());
  const uint64_t next_fp = engine.AddGraphRevision(next, base_fp);
  const int64_t scores_before = engine.stats().scores_computed;
  const Result<BackboneResponse> response = engine.Execute(
      DeltaShareRequest(next_fp, Method::kHighSalienceSkeleton));
  ASSERT_TRUE(response.ok());
  // HSS is not incremental: the request full-rescored (and, because the
  // method is unsupported, it does not even count as a fallback attempt).
  EXPECT_EQ(engine.stats().scores_computed, scores_before + 1);
  EXPECT_EQ(engine.stats().delta_rescores, 0);

  BackboneEngine cold_engine;
  const uint64_t cold_fp = cold_engine.AddGraph(next);
  const Result<BackboneResponse> cold = cold_engine.Execute(
      DeltaShareRequest(cold_fp, Method::kHighSalienceSkeleton));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(response->kept_edges, cold->kept_edges);
}

TEST(BackboneEngineTest, DeltaRescoreCanBeDisabled) {
  const Graph base = IntWeightGraph(15);
  const Graph next = TransferWeight(base, 4, 8);
  BackboneEngineOptions options;
  options.enable_delta_rescore = false;
  BackboneEngine engine(options);
  const uint64_t base_fp = engine.AddGraph(base);
  ASSERT_TRUE(
      engine.Execute(DeltaShareRequest(base_fp, Method::kNoiseCorrected))
          .ok());
  const uint64_t next_fp = engine.AddGraphRevision(next, base_fp);
  ASSERT_TRUE(
      engine.Execute(DeltaShareRequest(next_fp, Method::kNoiseCorrected))
          .ok());
  EXPECT_EQ(engine.stats().delta_rescores, 0);
  EXPECT_EQ(engine.stats().scores_computed, 2);
}

TEST(ScoreCacheTest, LineageIsAccountedAndPeekDoesNotCountHits) {
  ScoreCache cache(/*byte_budget=*/0);
  const ScoreCache::Stats empty = cache.stats();
  EXPECT_EQ(empty.lineage_entries, 0);

  cache.RegisterLineage(2, 1);
  cache.RegisterLineage(3, 2);
  cache.RegisterLineage(3, 3);  // self-edge: ignored
  cache.RegisterLineage(0, 1);  // zero child: ignored
  const ScoreCache::Stats with_lineage = cache.stats();
  EXPECT_EQ(with_lineage.lineage_entries, 2);
  EXPECT_GT(with_lineage.bytes, empty.bytes);  // the map is priced
  EXPECT_EQ(cache.LineageParent(2), 1u);
  EXPECT_EQ(cache.LineageParent(3), 2u);
  EXPECT_EQ(cache.LineageParent(7), 0u);

  // Peek is invisible to the hit/miss counters.
  const ScoreKey key = MakeScoreKey(42, Method::kNoiseCorrected, {});
  EXPECT_EQ(cache.Peek(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 1);

  cache.Clear();
  EXPECT_EQ(cache.stats().lineage_entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
}

// ---------------------------------------------------------------------------
// Fault injection (deterministic chaos harness).
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultInjector a(1234), b(1234), c(99);
  const FaultSpec spec{.probability = 0.3};
  for (FaultInjector* injector : {&a, &b, &c}) {
    injector->Configure(FaultSite::kScoringFailure, spec);
  }
  int same = 0, diff = 0;
  int64_t injected_a = 0;
  for (int draw = 0; draw < 200; ++draw) {
    const bool da = a.Draw(FaultSite::kScoringFailure);
    const bool db = b.Draw(FaultSite::kScoringFailure);
    const bool dc = c.Draw(FaultSite::kScoringFailure);
    injected_a += da ? 1 : 0;
    EXPECT_EQ(da, db);  // identical seeds replay identically
    (da == dc ? same : diff)++;
  }
  EXPECT_GT(diff, 0);  // a different seed is a different schedule
  EXPECT_EQ(a.draws(FaultSite::kScoringFailure), 200);
  EXPECT_EQ(a.injected(FaultSite::kScoringFailure), injected_a);
  // ~30% of 200, loosely bounded: the point is "neither none nor all".
  EXPECT_GT(injected_a, 20);
  EXPECT_LT(injected_a, 140);
}

TEST(FaultInjectorTest, MaxInjectionsBoundsTheFaults) {
  FaultInjector injector(7);
  injector.Configure(FaultSite::kCacheInsertFailure,
                     {.probability = 1.0, .max_injections = 3});
  int64_t fired = 0;
  for (int draw = 0; draw < 10; ++draw) {
    fired += injector.Draw(FaultSite::kCacheInsertFailure) ? 1 : 0;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.injected(FaultSite::kCacheInsertFailure), 3);
  EXPECT_EQ(injector.draws(FaultSite::kCacheInsertFailure), 10);
}

TEST(FaultInjectorTest, DisabledIsInertAndScopesRestore) {
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
  EXPECT_FALSE(InjectFault(FaultSite::kScoringFailure));
  FaultInjector outer(1), inner(2);
  {
    ScopedFaultInjection outer_scope(&outer);
    EXPECT_EQ(ActiveFaultInjector(), &outer);
    {
      ScopedFaultInjection inner_scope(&inner);
      EXPECT_EQ(ActiveFaultInjector(), &inner);
    }
    EXPECT_EQ(ActiveFaultInjector(), &outer);
  }
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
}

// ---------------------------------------------------------------------------
// Deadlines, cancellation, and the failure taxonomy.
// ---------------------------------------------------------------------------

BackboneRequest ShareRequest(uint64_t graph, Method method,
                             double share = 0.3) {
  BackboneRequest request;
  request.graph = graph;
  request.method = method;
  request.kind = RequestKind::kTopShare;
  request.share = share;
  return request;
}

TEST(BackboneEngineFaultTest, DeadlineExceededIsTypedAndNeverNegativeCached) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(80));
  FaultInjector injector(11);
  injector.Configure(FaultSite::kScoringLatency,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(500)});
  {
    ScopedFaultInjection scope(&injector);
    BackboneRequest request = ShareRequest(graph, Method::kNoiseCorrected);
    request.timeout = std::chrono::milliseconds(15);
    const auto start = std::chrono::steady_clock::now();
    const Result<BackboneResponse> result = engine.Execute(request);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsDeadlineExceeded());
    EXPECT_TRUE(result.status().IsCancellationShaped());
    // Within deadline + one grain (1ms sleep slice + scheduling slack),
    // nowhere near the 500ms the stalled scoring would have served.
    EXPECT_LT(elapsed, std::chrono::milliseconds(200));
  }
  const BackboneEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.deadline_hits, 1);
  EXPECT_EQ(stats.negative_entries, 0);  // the taxonomy exemption
  EXPECT_GE(stats.negative_exempt, 1);

  // The key was never poisoned: the same request without a budget
  // succeeds on the first try (injection scope has ended).
  const Result<BackboneResponse> retry =
      engine.Execute(ShareRequest(graph, Method::kNoiseCorrected));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(engine.stats().negative_hits, 0);
}

TEST(BackboneEngineFaultTest, CallerCancelTokenStopsTheRequest) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(81));
  FaultInjector injector(12);
  injector.Configure(FaultSite::kScoringLatency,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(500)});
  ScopedFaultInjection scope(&injector);

  CancelSource source;
  BackboneRequest request = ShareRequest(graph, Method::kDisparityFilter);
  request.cancel = source.token();
  std::optional<Result<BackboneResponse>> result;
  std::thread worker([&] { result = engine.Execute(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  source.Cancel();
  worker.join();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->ok());
  EXPECT_TRUE(result->status().IsCancelled());
  const BackboneEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.cancellations, 1);
  EXPECT_EQ(stats.negative_entries, 0);
  EXPECT_GE(stats.negative_exempt, 1);
}

TEST(BackboneEngineFaultTest, TransientFailuresRetryThenSucceed) {
  BackboneEngine engine;  // default max_retries = 3
  const uint64_t graph = engine.AddGraph(BenchGraph(82));
  FaultInjector injector(13);
  // Exactly the first two attempts fail; the third succeeds.
  injector.Configure(FaultSite::kScoringFailure,
                     {.probability = 1.0, .max_injections = 2});
  ScopedFaultInjection scope(&injector);
  const Result<BackboneResponse> result =
      engine.Execute(ShareRequest(graph, Method::kNoiseCorrected));
  ASSERT_TRUE(result.ok());
  const BackboneEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.scores_computed, 1);  // only the successful attempt scored
  EXPECT_EQ(stats.negative_entries, 0);
}

TEST(BackboneEngineFaultTest, ExhaustedRetriesAreNegativeCached) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(83));
  FaultInjector injector(14);
  injector.Configure(FaultSite::kScoringFailure, {.probability = 1.0});
  {
    ScopedFaultInjection scope(&injector);
    const Result<BackboneResponse> result =
        engine.Execute(ShareRequest(graph, Method::kNaiveThreshold));
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsUnavailable());
    EXPECT_TRUE(result.status().IsTransient());
  }
  BackboneEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.retries, 3);  // 1 attempt + 3 re-attempts, all injected
  EXPECT_EQ(stats.negative_entries, 1);  // transient-but-exhausted is cached

  // Injection is gone, but the negative cache answers until cleared.
  ASSERT_FALSE(engine.Execute(ShareRequest(graph, Method::kNaiveThreshold))
                   .ok());
  EXPECT_EQ(engine.stats().negative_hits, 1);
  engine.ClearNegativeCache();
  ASSERT_TRUE(engine.Execute(ShareRequest(graph, Method::kNaiveThreshold))
                  .ok());
}

// ---------------------------------------------------------------------------
// Admission control and backpressure.
// ---------------------------------------------------------------------------

/// Waits until the dispatcher has popped whatever it is working on, so
/// the next Submit lands in a queue of known depth.
void AwaitQueueDrainedToDepth(const BackboneEngine& engine, int64_t depth) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (engine.stats().queue_depth <= depth) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "queue never drained to depth " << depth;
}

TEST(BackboneEngineFaultTest, BoundedQueueRejectsNewBatches) {
  BackboneEngineOptions options;
  options.max_queued_batches = 1;
  options.overload_policy = OverloadPolicy::kRejectNew;
  BackboneEngine engine(options);
  const uint64_t graph = engine.AddGraph(BenchGraph(84));
  FaultInjector injector(15);
  // Stall the dispatcher on the first batch only, long enough to pile up.
  injector.Configure(FaultSite::kDispatcherStall,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(300),
                      .max_injections = 1});
  ScopedFaultInjection scope(&injector);

  const std::vector<BackboneRequest> batch{
      ShareRequest(graph, Method::kNaiveThreshold)};
  auto first = engine.Submit(batch);
  AwaitQueueDrainedToDepth(engine, 0);  // dispatcher holds it, stalled
  auto queued = engine.Submit(batch);   // fills the 1-deep queue
  auto rejected = engine.Submit(batch);  // bounces

  const auto refused = rejected.get();
  ASSERT_EQ(refused.size(), 1u);
  ASSERT_FALSE(refused[0].ok());
  EXPECT_TRUE(refused[0].status().IsResourceExhausted());
  EXPECT_EQ(engine.stats().rejected_batches, 1);

  // The accepted work still completes exactly.
  for (auto* future : {&first, &queued}) {
    for (const auto& result : future->get()) EXPECT_TRUE(result.ok());
  }
  EXPECT_EQ(engine.stats().shed_batches, 0);
}

TEST(BackboneEngineFaultTest, ShedOldestFailsTheQueuedBatch) {
  BackboneEngineOptions options;
  options.max_queued_batches = 1;
  options.overload_policy = OverloadPolicy::kShedOldest;
  BackboneEngine engine(options);
  const uint64_t graph = engine.AddGraph(BenchGraph(85));
  FaultInjector injector(16);
  injector.Configure(FaultSite::kDispatcherStall,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(300),
                      .max_injections = 1});
  ScopedFaultInjection scope(&injector);

  const std::vector<BackboneRequest> batch{
      ShareRequest(graph, Method::kNaiveThreshold)};
  auto first = engine.Submit(batch);
  AwaitQueueDrainedToDepth(engine, 0);
  auto shed = engine.Submit(batch);      // queued...
  auto fresh = engine.Submit(batch);     // ...then shed by this one

  const auto shed_results = shed.get();  // resolves immediately
  ASSERT_EQ(shed_results.size(), 1u);
  ASSERT_FALSE(shed_results[0].ok());
  EXPECT_TRUE(shed_results[0].status().IsUnavailable());
  EXPECT_EQ(engine.stats().shed_batches, 1);

  for (auto* future : {&first, &fresh}) {
    for (const auto& result : future->get()) EXPECT_TRUE(result.ok());
  }
  EXPECT_EQ(engine.stats().rejected_batches, 0);
}

TEST(BackboneEngineFaultTest, InflightLimitRefusesNewColdScorings) {
  BackboneEngineOptions options;
  options.max_inflight_scores = 1;
  BackboneEngine engine(options);
  const uint64_t graph = engine.AddGraph(BenchGraph(86));
  FaultInjector injector(17);
  // Only the first scoring stalls (the probe below must run unstalled).
  injector.Configure(FaultSite::kScoringLatency,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(400),
                      .max_injections = 1});
  ScopedFaultInjection scope(&injector);

  std::optional<Result<BackboneResponse>> slow;
  std::thread worker([&] {
    slow = engine.Execute(ShareRequest(graph, Method::kNoiseCorrected));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A second *key* is refused while the first scoring occupies the slot.
  const Result<BackboneResponse> refused =
      engine.Execute(ShareRequest(graph, Method::kDisparityFilter));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted());
  worker.join();
  ASSERT_TRUE(slow.has_value());
  EXPECT_TRUE(slow->ok());
  EXPECT_EQ(engine.stats().inflight_rejected, 1);

  // The refusal was about engine load, not the key: it works now.
  EXPECT_TRUE(
      engine.Execute(ShareRequest(graph, Method::kDisparityFilter)).ok());
  EXPECT_EQ(engine.stats().negative_hits, 0);
}

TEST(BackboneEngineFaultTest, QueueDelayCountsAgainstSubmitDeadlines) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(87));
  FaultInjector injector(18);
  injector.Configure(FaultSite::kDispatcherStall,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(100),
                      .max_injections = 1});
  ScopedFaultInjection scope(&injector);

  BackboneRequest request = ShareRequest(graph, Method::kNaiveThreshold);
  request.timeout = std::chrono::milliseconds(10);
  const auto results =
      engine.Submit(std::vector<BackboneRequest>{request}).get();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].ok());
  // Armed at Submit, expired in the (stalled) queue: pre-answered without
  // ever scoring.
  EXPECT_TRUE(results[0].status().IsDeadlineExceeded());
  EXPECT_EQ(engine.stats().scores_computed, 0);
  EXPECT_GE(engine.stats().deadline_hits, 1);
}

// ---------------------------------------------------------------------------
// Shutdown with queued work (regression: futures must never dangle).
// ---------------------------------------------------------------------------

TEST(BackboneEngineFaultTest, DestructionResolvesQueuedSubmitFutures) {
  FaultInjector injector(19);
  injector.Configure(FaultSite::kDispatcherStall,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(400)});
  ScopedFaultInjection scope(&injector);

  std::vector<std::future<std::vector<Result<BackboneResponse>>>> futures;
  {
    BackboneEngine engine;
    const uint64_t graph = engine.AddGraph(BenchGraph(88));
    for (int i = 0; i < 4; ++i) {
      futures.push_back(engine.Submit(std::vector<BackboneRequest>{
          ShareRequest(graph, Method::kNoiseCorrected)}));
    }
    // Destructor runs with the dispatcher stalled on the first batch and
    // the rest queued.
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    for (const auto& result : future.get()) {
      if (result.ok()) continue;
      // A queued batch is cancelled with a typed status; the stalled one
      // may also surface the shutdown cancellation from its scoring.
      EXPECT_TRUE(result.status().IsUnavailable() ||
                  result.status().IsCancellationShaped())
          << result.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Negative-cache TTL expiry and concurrent ClearNegativeCache.
// ---------------------------------------------------------------------------

TEST(BackboneEngineFaultTest, NegativeCacheTtlExpiresAndRearms) {
  BackboneEngineOptions options;
  options.negative_ttl = std::chrono::milliseconds(50);
  BackboneEngine engine(options);
  const uint64_t graph = engine.AddGraph(BenchGraph(89));

  // Deterministic failure: the HSS cost guard (|V| * |E| > 1).
  BackboneRequest request =
      ShareRequest(graph, Method::kHighSalienceSkeleton);
  request.score_options.hss_max_cost = 1;

  ASSERT_FALSE(engine.Execute(request).ok());
  EXPECT_EQ(engine.stats().negative_entries, 1);
  ASSERT_FALSE(engine.Execute(request).ok());
  EXPECT_EQ(engine.stats().scores_computed, 1);  // answered from memory
  EXPECT_EQ(engine.stats().negative_hits, 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(engine.stats().negative_entries, 0);  // expired, not yet swept
  ASSERT_FALSE(engine.Execute(request).ok());
  EXPECT_EQ(engine.stats().scores_computed, 2);  // TTL lapsed: re-attempted
  EXPECT_EQ(engine.stats().negative_hits, 1);
}

TEST(BackboneEngineFaultTest, ClearNegativeCacheUnderConcurrentSubmitLoad) {
  BackboneEngine engine;
  const uint64_t graph = engine.AddGraph(BenchGraph(90));

  BackboneRequest good = ShareRequest(graph, Method::kNaiveThreshold);
  BackboneRequest bad = ShareRequest(graph, Method::kHighSalienceSkeleton);
  bad.score_options.hss_max_cost = 1;

  std::atomic<int64_t> good_failures{0}, bad_successes{0};
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 20;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        auto results =
            engine.Submit(std::vector<BackboneRequest>{good, bad}).get();
        if (!results[0].ok()) good_failures.fetch_add(1);
        if (results[1].ok()) bad_successes.fetch_add(1);
      }
    });
  }
  // Hammer the clear while the submits run: entries appear and vanish,
  // in-flight failures re-insert concurrently.
  for (int i = 0; i < 200; ++i) {
    engine.ClearNegativeCache();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (std::thread& worker : workers) worker.join();

  // Whatever the interleaving: good requests always succeed, the guarded
  // HSS key always fails (from the negative cache or a fresh attempt).
  EXPECT_EQ(good_failures.load(), 0);
  EXPECT_EQ(bad_successes.load(), 0);
  ASSERT_TRUE(engine.Execute(good).ok());
  const Result<BackboneResponse> still_bad = engine.Execute(bad);
  ASSERT_FALSE(still_bad.ok());
  EXPECT_TRUE(still_bad.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Graceful degradation.
// ---------------------------------------------------------------------------

TEST(BackboneEngineFaultTest, DegradedRequestServedFromWarmAncestor) {
  BackboneEngineOptions options;
  options.enable_delta_rescore = false;  // force the (stalled) full path
  BackboneEngine engine(options);
  const Graph base_graph = IntWeightGraph(91);
  const uint64_t base = engine.AddGraph(base_graph);
  const uint64_t revision =
      engine.AddGraphRevision(TransferWeight(base_graph, 6, 3), base);

  const Result<BackboneResponse> warm =
      engine.Execute(ShareRequest(base, Method::kNoiseCorrected));
  ASSERT_TRUE(warm.ok());

  FaultInjector injector(20);
  injector.Configure(FaultSite::kScoringLatency,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(400)});
  ScopedFaultInjection scope(&injector);

  BackboneRequest request = ShareRequest(revision, Method::kNoiseCorrected);
  request.timeout = std::chrono::milliseconds(10);

  // Without the opt-in, the lapse is a plain typed failure.
  const Result<BackboneResponse> strict = engine.Execute(request);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsDeadlineExceeded());

  // With it, the stale-but-exact ancestor entry answers, flagged, and the
  // exact recompute is queued behind the client.
  request.allow_degraded = true;
  const Result<BackboneResponse> degraded = engine.Execute(request);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->degraded_from, base);
  EXPECT_EQ(degraded->kept_edges, warm->kept_edges);
  EXPECT_EQ(degraded->coverage, warm->coverage);
  const BackboneEngine::Stats stats = engine.stats();
  EXPECT_GE(stats.degraded_served, 1);
  EXPECT_GE(stats.background_refreshes, 1);
}

TEST(BackboneEngineFaultTest, DegradedHssFallsBackToSampledApproximation) {
  BackboneEngineOptions options;
  options.degraded_hss_sample = 32;
  BackboneEngine engine(options);
  const uint64_t graph = engine.AddGraph(BenchGraph(92));

  // Reference: what an explicit sampled request computes (same seed).
  BackboneEngine reference_engine;
  const uint64_t ref_graph = reference_engine.AddGraph(BenchGraph(92));
  BackboneRequest sampled =
      ShareRequest(ref_graph, Method::kHighSalienceSkeleton);
  sampled.score_options.hss_source_sample_size = 32;
  const Result<BackboneResponse> reference =
      reference_engine.Execute(sampled);
  ASSERT_TRUE(reference.ok());

  FaultInjector injector(21);
  // Stall only the exact scoring; the sampled fallback (the second draw)
  // runs clean.
  injector.Configure(FaultSite::kScoringLatency,
                     {.probability = 1.0,
                      .latency = std::chrono::milliseconds(400),
                      .max_injections = 1});
  ScopedFaultInjection scope(&injector);

  BackboneRequest request = ShareRequest(graph, Method::kHighSalienceSkeleton);
  request.timeout = std::chrono::milliseconds(10);
  request.allow_degraded = true;
  const Result<BackboneResponse> degraded = engine.Execute(request);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->degraded_from, graph);
  // The approximation is itself exact *for its declared sample*: it is
  // bit-identical to the explicitly-sampled request, never a silently
  // perturbed exact answer.
  EXPECT_EQ(degraded->kept_edges, reference->kept_edges);
  EXPECT_EQ(degraded->coverage, reference->coverage);
  EXPECT_GE(engine.stats().degraded_served, 1);
}

TEST(GraphStoreTest, DeltaBetweenResidentGraphs) {
  GraphStore store;
  const Graph base = IntWeightGraph(17, /*num_nodes=*/60);
  const Graph next = TransferWeight(base, 3, 21);
  const StoredGraph stored_base = store.Intern(base);
  const StoredGraph stored_next = store.Intern(next);

  const Result<GraphDelta> delta =
      store.DeltaBetween(stored_base.fingerprint, stored_next.fingerprint);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->totals_equal);
  EXPECT_EQ(delta->base_edges, base.num_edges());
  // Identity mirrors the direct computation.
  const Result<GraphDelta> direct = ComputeGraphDelta(base, next);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(delta->AffectedEdges(), direct->AffectedEdges());

  EXPECT_FALSE(store.DeltaBetween(stored_base.fingerprint, 12345u).ok());
}

}  // namespace
}  // namespace netbone
