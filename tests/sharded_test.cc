// Tests for sharded serving (service/sharded_engine.h): fingerprint
// routing determinism at any thread count, revision co-location via
// routing overrides, batch partition/scatter order, hot-family rebalance
// (bit-identity, lineage-delta warm paths on the target shard, grace-
// period retirement, failure isolation), stats rollup coherence, and the
// boot-time routing self-heal over per-shard snapshots.

#include "service/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/registry.h"
#include "core/sweep.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "service/engine.h"
#include "service/graph_store.h"

namespace netbone {
namespace {

namespace fs = std::filesystem;

Graph IntWeightEr(int num_nodes, uint64_t seed) {
  const auto er = GenerateErdosRenyi(
      {.num_nodes = num_nodes, .average_degree = 3.0, .seed = seed});
  GraphBuilder builder(Directedness::kUndirected);
  builder.ReserveNodes(num_nodes);
  for (const Edge& e : er->edges()) {
    builder.AddEdge(e.src, e.dst, std::floor(e.weight * 3.0) + 2.0);
  }
  return *builder.Build();
}

/// Weight-preserving perturbation so NC deltas stay incremental.
Graph TransferWeight(const Graph& base, int64_t transfers, uint64_t seed) {
  std::vector<Edge> edges(base.edges().begin(), base.edges().end());
  Rng rng(seed);
  for (int64_t t = 0; t < transfers; ++t) {
    const size_t a = static_cast<size_t>(rng.NextBounded(edges.size()));
    const size_t b = static_cast<size_t>(rng.NextBounded(edges.size()));
    if (a == b || edges[a].weight < 2.0) continue;
    edges[a].weight -= 1.0;
    edges[b].weight += 1.0;
  }
  GraphBuilder builder(base.directedness());
  builder.ReserveNodes(base.num_nodes());
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return *builder.Build();
}

BackboneRequest ShareRequest(uint64_t graph, Method method = Method::kNoiseCorrected,
                             double share = 0.3) {
  BackboneRequest request;
  request.graph = graph;
  request.method = method;
  request.kind = RequestKind::kTopShare;
  request.share = share;
  return request;
}

bool SamePayload(const BackboneResponse& a, const BackboneResponse& b) {
  return a.kept_edges == b.kept_edges && a.kept == b.kept &&
         a.coverage == b.coverage && a.weight_share == b.weight_share &&
         a.sweep == b.sweep && a.connect_k == b.connect_k &&
         a.stability == b.stability;
}

/// A graph whose fingerprint routes to `shard` on a fresh `num_shards`
/// engine — found by deterministic seed search.
Graph GraphOnShard(const ShardedBackboneEngine& engine, int shard,
                   int num_nodes, uint64_t start_seed) {
  for (uint64_t seed = start_seed;; ++seed) {
    Graph g = IntWeightEr(num_nodes, seed);
    if (engine.ShardOf(GraphFingerprint(g)) == shard) return g;
  }
}

// ---------------------------------------------------------------------------
// Routing determinism.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, RoutingIsDeterministicAcrossInstancesAndThreads) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 4;
  ShardedBackboneEngine a(options);
  ShardedBackboneEngine b(options);

  std::vector<uint64_t> fps;
  for (uint64_t fp = 1; fp <= 64; ++fp) fps.push_back(fp * 0x9E3779B97F4A7C15ULL);

  // Same fingerprint -> same shard on independent engines (pure function
  // of fingerprint and table; both tables are empty).
  for (const uint64_t fp : fps) EXPECT_EQ(a.ShardOf(fp), b.ShardOf(fp));

  // ... and from any number of concurrent readers.
  std::vector<std::vector<int>> per_thread(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&a, &fps, &per_thread, t]() {
      for (const uint64_t fp : fps) {
        per_thread[static_cast<size_t>(t)].push_back(a.ShardOf(fp));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(per_thread[static_cast<size_t>(t)], per_thread[0]);
  }
}

TEST(ShardedEngineTest, SingleShardBehavesLikeBareEngine) {
  const Graph graph = IntWeightEr(120, 5);

  BackboneEngine bare;
  const uint64_t bare_fp = bare.AddGraph(graph);
  const auto want = bare.Execute(ShareRequest(bare_fp));
  ASSERT_TRUE(want.ok());

  ShardedBackboneEngine sharded;  // defaults: 1 shard
  EXPECT_EQ(sharded.num_shards(), 1);
  const uint64_t fp = sharded.AddGraph(graph);
  EXPECT_EQ(fp, bare_fp);
  EXPECT_EQ(sharded.ShardOf(fp), 0);
  const auto got = sharded.Execute(ShareRequest(fp));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SamePayload(*got, *want));
}

TEST(ShardedEngineTest, RequestForUnknownGraphFailsNotCrashes) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 3;
  ShardedBackboneEngine engine(options);
  const auto response = engine.Execute(ShareRequest(0xDEADBEEFULL));
  EXPECT_FALSE(response.ok());
}

// ---------------------------------------------------------------------------
// Revision co-location.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, RevisionIsPinnedToBaseShard) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 4;
  ShardedBackboneEngine engine(options);

  const Graph base = IntWeightEr(150, 21);
  const uint64_t base_fp = engine.AddGraph(base);
  const int home = engine.ShardOf(base_fp);

  // Chain three revisions; every one must land on the base's shard no
  // matter where its own hash points, and each off-hash child must show
  // up as a routing override. The hash shard is read off a fresh engine
  // whose table has no overrides.
  ShardedBackboneEngine hash_oracle(options);
  int64_t off_hash = 0;
  uint64_t parent = base_fp;
  Graph current = base;
  for (int i = 0; i < 3; ++i) {
    current = TransferWeight(current, 4, 31u + static_cast<uint64_t>(i));
    const uint64_t child = engine.AddGraphRevision(current, parent);
    ASSERT_NE(child, parent);
    EXPECT_EQ(engine.ShardOf(child), home);
    // The graph must actually live on that shard, not just route there.
    EXPECT_NE(engine.shard(home).FindGraph(child), nullptr);
    if (hash_oracle.ShardOf(child) != home) ++off_hash;
    parent = child;
  }
  EXPECT_EQ(engine.stats().routing_overrides, off_hash);
  // Pinned children ride the delta warm path on the home shard.
  ASSERT_TRUE(engine.Execute(ShareRequest(base_fp)).ok());
  const int64_t deltas_before = engine.stats().shards[static_cast<size_t>(home)].delta_rescores;
  ASSERT_TRUE(engine.Execute(ShareRequest(parent)).ok());
  EXPECT_GT(engine.stats().shards[static_cast<size_t>(home)].delta_rescores,
            deltas_before);
}

// ---------------------------------------------------------------------------
// Batch partition and scatter.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, BatchResultsComeBackInRequestOrder) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 4;
  ShardedBackboneEngine engine(options);

  std::vector<uint64_t> fps;
  for (int i = 0; i < 6; ++i) {
    fps.push_back(engine.AddGraph(IntWeightEr(100 + 10 * i,
                                              50u + static_cast<uint64_t>(i))));
  }

  // Interleave shards and methods; include one failing request mid-batch.
  std::vector<BackboneRequest> batch;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < fps.size(); ++i) {
      batch.push_back(ShareRequest(
          fps[i], round == 1 ? Method::kDisparityFilter
                             : Method::kNoiseCorrected,
          0.2 + 0.1 * static_cast<double>(round)));
    }
  }
  batch.insert(batch.begin() + 7, ShareRequest(0x5151515151ULL));

  // Reference: element-wise sequential execution.
  std::vector<Result<BackboneResponse>> want;
  for (const BackboneRequest& r : batch) want.push_back(engine.Execute(r));

  const auto got = engine.ExecuteBatch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << "index " << i;
    if (got[i].ok()) {
      EXPECT_TRUE(SamePayload(*got[i], *want[i])) << "index " << i;
    }
  }

  auto future = engine.Submit(batch);
  const auto submitted = future.get();
  ASSERT_EQ(submitted.size(), batch.size());
  for (size_t i = 0; i < submitted.size(); ++i) {
    ASSERT_EQ(submitted[i].ok(), want[i].ok()) << "index " << i;
    if (submitted[i].ok()) {
      EXPECT_TRUE(SamePayload(*submitted[i], *want[i])) << "index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Rebalance.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, RebalanceMigratesHotFamilyAndKeepsBitIdentity) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 4;
  ShardedBackboneEngine engine(options);

  // A lineage family {A, A'} and an independent B on the same shard, so
  // migrating the family narrows the gap without emptying the source.
  const Graph graph_a = GraphOnShard(engine, 1, 140, 300);
  const Graph graph_b = GraphOnShard(engine, 1, 155, 400);
  ASSERT_NE(GraphFingerprint(graph_a), GraphFingerprint(graph_b));
  const uint64_t fp_a = engine.AddGraph(graph_a);
  const uint64_t fp_rev =
      engine.AddGraphRevision(TransferWeight(graph_a, 4, 77), fp_a);
  const uint64_t fp_b = engine.AddGraph(graph_b);
  ASSERT_EQ(engine.ShardOf(fp_a), 1);
  ASSERT_EQ(engine.ShardOf(fp_b), 1);

  // Warm everything, then skew the load counters onto the family.
  const auto ref_a = engine.Execute(ShareRequest(fp_a));
  const auto ref_rev = engine.Execute(ShareRequest(fp_rev));
  const auto ref_b = engine.Execute(ShareRequest(fp_b));
  ASSERT_TRUE(ref_a.ok() && ref_rev.ok() && ref_b.ok());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(engine.Execute(ShareRequest(fp_a)).ok());
    if (i < 60) ASSERT_TRUE(engine.Execute(ShareRequest(fp_rev)).ok());
    if (i < 40) ASSERT_TRUE(engine.Execute(ShareRequest(fp_b)).ok());
  }

  const int64_t scores_before = engine.stats().total.scores_computed;
  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  const int moved = engine.RebalanceNow();
  EXPECT_GE(moved, 1);
  EXPECT_GE(engine.stats().migrations, 1);

  // The family moved together; the bystander stayed.
  const int target = engine.ShardOf(fp_a);
  EXPECT_NE(target, 1);
  EXPECT_EQ(engine.ShardOf(fp_rev), target);
  EXPECT_EQ(engine.ShardOf(fp_b), 1);

  // Migrated state serves warm and bit-identically.
  const auto after_a = engine.Execute(ShareRequest(fp_a));
  const auto after_rev = engine.Execute(ShareRequest(fp_rev));
  const auto after_b = engine.Execute(ShareRequest(fp_b));
  ASSERT_TRUE(after_a.ok() && after_rev.ok() && after_b.ok());
  EXPECT_TRUE(SamePayload(*after_a, *ref_a));
  EXPECT_TRUE(SamePayload(*after_rev, *ref_rev));
  EXPECT_TRUE(SamePayload(*after_b, *ref_b));
  EXPECT_TRUE(after_a->cache_hit);
  EXPECT_TRUE(after_rev->cache_hit);
  EXPECT_EQ(engine.stats().total.scores_computed, scores_before);
  EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before);

  // Lineage survives the move: a new revision of the migrated head pins
  // to the target shard and delta-patches there.
  const uint64_t fp_child =
      engine.AddGraphRevision(TransferWeight(graph_a, 3, 88), fp_rev);
  EXPECT_EQ(engine.ShardOf(fp_child), target);
  const int64_t target_deltas =
      engine.stats().shards[static_cast<size_t>(target)].delta_rescores;
  ASSERT_TRUE(engine.Execute(ShareRequest(fp_child)).ok());
  EXPECT_GT(engine.stats().shards[static_cast<size_t>(target)].delta_rescores,
            target_deltas);

  // Grace period: the source still holds the graph after the migrating
  // cycle, and retires it on the next one.
  EXPECT_NE(engine.shard(1).FindGraph(fp_a), nullptr);
  (void)engine.RebalanceNow();
  EXPECT_EQ(engine.shard(1).FindGraph(fp_a), nullptr);
  EXPECT_EQ(engine.shard(1).FindGraph(fp_rev), nullptr);
  EXPECT_NE(engine.shard(1).FindGraph(fp_b), nullptr);

  // ... and the retired copy is not resurrected by further requests.
  const auto again = engine.Execute(ShareRequest(fp_a));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(SamePayload(*again, *ref_a));
}

TEST(ShardedEngineTest, RebalanceIsANoOpWhenLoadIsBalanced) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 2;
  ShardedBackboneEngine engine(options);
  const uint64_t fp_a = engine.AddGraph(GraphOnShard(engine, 0, 120, 500));
  const uint64_t fp_b = engine.AddGraph(GraphOnShard(engine, 1, 120, 600));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.Execute(ShareRequest(fp_a)).ok());
    ASSERT_TRUE(engine.Execute(ShareRequest(fp_b)).ok());
  }
  const uint64_t epoch_before = engine.RoutingEpoch();
  EXPECT_EQ(engine.RebalanceNow(), 0);
  EXPECT_EQ(engine.RoutingEpoch(), epoch_before);
  EXPECT_EQ(engine.stats().migrations, 0);
  EXPECT_EQ(engine.ShardOf(fp_a), 0);
  EXPECT_EQ(engine.ShardOf(fp_b), 1);
}

// ---------------------------------------------------------------------------
// Stats rollup and metrics namespaces.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, StatsRollupSumsShards) {
  ShardedBackboneEngineOptions options;
  options.num_shards = 3;
  ShardedBackboneEngine engine(options);
  std::vector<uint64_t> fps;
  for (int i = 0; i < 5; ++i) {
    fps.push_back(engine.AddGraph(IntWeightEr(110 + 10 * i,
                                              700u + static_cast<uint64_t>(i))));
  }
  for (const uint64_t fp : fps) {
    ASSERT_TRUE(engine.Execute(ShareRequest(fp)).ok());
    ASSERT_TRUE(engine.Execute(ShareRequest(fp)).ok());  // warm hit
  }

  const auto stats = engine.stats();
  ASSERT_EQ(static_cast<int>(stats.shards.size()), 3);
  int64_t requests = 0, scores = 0, hits = 0, graphs = 0;
  for (const auto& shard : stats.shards) {
    requests += shard.requests;
    scores += shard.scores_computed;
    hits += shard.cache.hits;
    graphs += shard.graphs.graphs;
  }
  EXPECT_EQ(stats.total.requests, requests);
  EXPECT_EQ(stats.total.scores_computed, scores);
  EXPECT_EQ(stats.total.cache.hits, hits);
  EXPECT_EQ(stats.total.graphs.graphs, graphs);
  EXPECT_EQ(stats.total.requests, static_cast<int64_t>(fps.size()) * 2);
  EXPECT_EQ(stats.total.graphs.graphs, static_cast<int64_t>(fps.size()));

  const auto metrics = engine.Metrics();
  EXPECT_EQ(metrics.ValueOf("sharded.shards", -1), 3);
  // The rollup view and the per-shard views agree in total.
  double per_shard_requests = 0;
  for (int i = 0; i < 3; ++i) {
    per_shard_requests += metrics.ValueOf(
        "shard" + std::to_string(i) + ".engine.requests", 0);
  }
  EXPECT_EQ(metrics.ValueOf("engine.requests", -1), per_shard_requests);
}

// ---------------------------------------------------------------------------
// Per-shard snapshots and routing self-heal.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, WarmRestartRestoresEveryShardAndHealsRouting) {
  const fs::path root =
      fs::temp_directory_path() / "netbone_sharded_test_snap";
  std::error_code ec;
  fs::remove_all(root, ec);

  ShardedBackboneEngineOptions options;
  options.num_shards = 4;
  options.engine.snapshot_dir = root.string();
  options.engine.snapshot_on_shutdown = false;

  uint64_t fp_a = 0, fp_rev = 0, fp_b = 0;
  int target = -1;
  BackboneResponse want_a, want_rev, want_b;
  {
    ShardedBackboneEngine engine(options);
    const Graph graph_a = GraphOnShard(engine, 2, 130, 800);
    const Graph graph_b = GraphOnShard(engine, 2, 145, 900);
    fp_a = engine.AddGraph(graph_a);
    fp_rev = engine.AddGraphRevision(TransferWeight(graph_a, 4, 99), fp_a);
    fp_b = engine.AddGraph(graph_b);
    want_a = *engine.Execute(ShareRequest(fp_a));
    want_rev = *engine.Execute(ShareRequest(fp_rev));
    want_b = *engine.Execute(ShareRequest(fp_b));
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(engine.Execute(ShareRequest(fp_a)).ok());
      if (i < 50) ASSERT_TRUE(engine.Execute(ShareRequest(fp_rev)).ok());
      if (i < 35) ASSERT_TRUE(engine.Execute(ShareRequest(fp_b)).ok());
    }
    ASSERT_GE(engine.RebalanceNow(), 1);
    target = engine.ShardOf(fp_a);
    ASSERT_NE(target, 2);
    // Let the grace period elapse so the source retires its copy; until
    // then both shards hold the family and boot self-heal would route to
    // the hash owner (also correct — both copies are warm — but not the
    // post-retirement steady state this test pins down).
    (void)engine.RebalanceNow();
    ASSERT_EQ(engine.shard(2).FindGraph(fp_a), nullptr);
    ASSERT_TRUE(engine.WriteSnapshotNow().ok());
  }

  {
    ShardedBackboneEngine engine(options);
    const auto stats = engine.stats();
    EXPECT_GT(stats.total.restored_entries, 0);
    EXPECT_GT(stats.total.restored_graphs, 0);
    EXPECT_EQ(stats.total.quarantined_sections, 0);

    // Self-heal routes the migrated family to the shard that holds it.
    EXPECT_EQ(engine.ShardOf(fp_a), target);
    EXPECT_EQ(engine.ShardOf(fp_rev), target);
    EXPECT_EQ(engine.ShardOf(fp_b), 2);
    EXPECT_GE(stats.routing_overrides, 1);

    // Fully warm, bit-identical serving from the per-shard snapshots.
    const int64_t sorts_before = ScoreOrder::SortsPerformed();
    const auto got_a = engine.Execute(ShareRequest(fp_a));
    const auto got_rev = engine.Execute(ShareRequest(fp_rev));
    const auto got_b = engine.Execute(ShareRequest(fp_b));
    ASSERT_TRUE(got_a.ok() && got_rev.ok() && got_b.ok());
    EXPECT_TRUE(SamePayload(*got_a, want_a));
    EXPECT_TRUE(SamePayload(*got_rev, want_rev));
    EXPECT_TRUE(SamePayload(*got_b, want_b));
    EXPECT_TRUE(got_a->cache_hit && got_rev->cache_hit && got_b->cache_hit);
    EXPECT_EQ(engine.stats().total.scores_computed, 0);
    EXPECT_EQ(ScoreOrder::SortsPerformed(), sorts_before);
  }

  fs::remove_all(root, ec);
}

// ---------------------------------------------------------------------------
// Thread-count independence of the full request path.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, ResponsesIdenticalAcrossShardAndThreadCounts) {
  const std::vector<Graph> graphs = {IntWeightEr(130, 41), IntWeightEr(150, 42),
                                     IntWeightEr(170, 43)};

  // Reference from a bare single-engine run.
  std::vector<BackboneResponse> want;
  std::vector<uint64_t> fingerprints;
  {
    BackboneEngine bare;
    for (const Graph& g : graphs) fingerprints.push_back(bare.AddGraph(g));
    for (const uint64_t fp : fingerprints) {
      for (const Method m : {Method::kNoiseCorrected, Method::kDisparityFilter,
                             Method::kNaiveThreshold}) {
        want.push_back(*bare.Execute(ShareRequest(fp, m)));
      }
    }
  }

  for (const int shards : {2, 4}) {
    for (const int threads : {1, 2}) {
      ShardedBackboneEngineOptions options;
      options.num_shards = shards;
      options.engine.num_threads = threads;
      ShardedBackboneEngine engine(options);
      std::vector<uint64_t> fps;
      for (const Graph& g : graphs) fps.push_back(engine.AddGraph(g));
      ASSERT_EQ(fps, fingerprints);
      size_t at = 0;
      for (const uint64_t fp : fps) {
        for (const Method m : {Method::kNoiseCorrected,
                               Method::kDisparityFilter,
                               Method::kNaiveThreshold}) {
          const auto got = engine.Execute(ShareRequest(fp, m));
          ASSERT_TRUE(got.ok());
          EXPECT_TRUE(SamePayload(*got, want[at]))
              << "shards=" << shards << " threads=" << threads
              << " index=" << at;
          ++at;
        }
      }
    }
  }
}

}  // namespace
}  // namespace netbone
