// Tests for the batched SIMD scoring kernels (core/simd_kernels.h). The
// central property, checked exhaustively around lane boundaries: every
// level SupportedSimdLevels() reports — including the remainder and
// scalar-fallback paths — produces output BIT-IDENTICAL to the scalar
// per-edge oracle: scores, sdevs, and first-failing edge ids, for every
// NC flag variant and DF endpoint rule, on graphs of every size in
// [W*k - 2, W*k + 2] for k in 0..4 (W = widest lane count), with
// self-loops and zero-weight edges mixed in, through the full parallel
// sweeps at thread counts 1, 2 and 4 and through the dirty-subset
// patching path. Runs under the asan/tsan presets (smoke label), both
// with the host's best level and with NETBONE_SIMD=scalar forced.

#include "core/simd_kernels.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/disparity_filter.h"
#include "core/naive.h"
#include "core/noise_corrected.h"
#include "core/scored_edges.h"
#include "graph/builder.h"
#include "graph/edge_columns.h"
#include "graph/graph.h"

namespace netbone {
namespace {

bool BitEqual(const EdgeScore& a, const EdgeScore& b) {
  return std::memcmp(&a, &b, sizeof(EdgeScore)) == 0;
}

bool BitEqual(const std::vector<EdgeScore>& a,
              const std::vector<EdgeScore>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(EdgeScore)) == 0;
}

/// Deterministic graph with exactly `num_edges` edges over 8 nodes:
/// distinct node pairs in lexicographic order (so the builder's dedup can
/// never merge two of them), a self-loop as the first edge when requested,
/// and every fourth weight exactly zero — the inputs the vector kernels'
/// validity masks and conservative fallbacks must handle. Zero-weight
/// edges here share endpoints with positive ones, so every endpoint keeps
/// positive strength and NC accepts the whole table.
Graph MakeLaneGraph(int64_t num_edges, Directedness directedness,
                    bool with_self_loop, uint64_t seed) {
  constexpr NodeId kNodes = 8;
  GraphBuilder builder(directedness, DuplicateEdgePolicy::kError,
                       SelfLoopPolicy::kKeep);
  builder.ReserveNodes(kNodes);
  Rng rng(seed);
  int64_t added = 0;
  if (with_self_loop && added < num_edges) {
    builder.AddEdge(0, 0, static_cast<double>(rng.UniformInt(1, 9)));
    ++added;
  }
  for (NodeId a = 0; a < kNodes && added < num_edges; ++a) {
    const NodeId b_begin = directedness == Directedness::kDirected ? 0 : a + 1;
    for (NodeId b = b_begin; b < kNodes && added < num_edges; ++b) {
      if (a == b) continue;  // the one self-loop above is enough
      const double weight =
          added % 4 == 3 ? 0.0 : static_cast<double>(rng.UniformInt(1, 9));
      builder.AddEdge(a, b, weight);
      ++added;
    }
  }
  EXPECT_EQ(added, num_edges) << "graph family too small for requested size";
  Result<Graph> graph = builder.Build();
  EXPECT_TRUE(graph.ok()) << graph.status().message();
  return *std::move(graph);
}

/// All NC formula variants the kernels support (the binomial-pvalue
/// variant never reaches them; see noise_corrected.cc).
std::vector<NcKernelConfig> NcConfigVariants(double n_total) {
  std::vector<NcKernelConfig> variants(4);
  for (NcKernelConfig& cfg : variants) cfg.n_total = n_total;
  variants[1].bayesian_prior = false;
  variants[2].python_erratum_beta = true;
  variants[3].marginals_respond_to_weight = false;
  return variants;
}

constexpr DisparityEndpointRule kDfRules[] = {
    DisparityEndpointRule::kEither, DisparityEndpointRule::kBoth,
    DisparityEndpointRule::kSource};

/// Checks one (kernel, range) call at `level` against the scalar oracle:
/// same first-failing id, and bitwise-equal output on every slot the
/// contract defines (all of [begin, end) on success, [begin, bad) on
/// failure — out[] is unspecified from the failing id on).
template <typename BatchAt>
void ExpectRangeMatchesScalar(const BatchAt& batch_at, SimdLevel level,
                              int64_t begin, int64_t end,
                              const std::string& what) {
  const int64_t n = end - begin;
  if (n < 0) return;
  // Poison both buffers identically so "unwritten" slots cannot hide a
  // kernel that writes outside its range.
  const EdgeScore poison{-12345.0, -54321.0};
  std::vector<EdgeScore> scalar_out(static_cast<size_t>(end) + 1, poison);
  std::vector<EdgeScore> vector_out(static_cast<size_t>(end) + 1, poison);
  const int64_t scalar_bad =
      batch_at(SimdLevel::kScalar, begin, end, scalar_out.data());
  const int64_t vector_bad = batch_at(level, begin, end, vector_out.data());
  EXPECT_EQ(scalar_bad, vector_bad)
      << what << " level=" << SimdLevelName(level) << " range=[" << begin
      << "," << end << ")";
  const int64_t defined_end = scalar_bad >= 0 ? scalar_bad : end;
  for (int64_t i = begin; i < defined_end; ++i) {
    EXPECT_TRUE(BitEqual(scalar_out[static_cast<size_t>(i)],
                         vector_out[static_cast<size_t>(i)]))
        << what << " level=" << SimdLevelName(level) << " edge=" << i
        << " range=[" << begin << "," << end << ")";
  }
  // Slots outside [begin, end) must stay untouched at every level.
  EXPECT_TRUE(BitEqual(vector_out[static_cast<size_t>(end)], poison)) << what;
  if (begin > 0) {
    EXPECT_TRUE(BitEqual(vector_out[0], poison)) << what;
  }
}

/// Sweeps every supported level and a set of sub-ranges chosen to hit
/// every lane/remainder alignment: full table, offset starts 1..3 (partial
/// first block), and short ends (partial last block).
void CheckGraphAgainstScalar(const Graph& graph) {
  const EdgeColumns& cols = graph.edge_columns();
  const int64_t m = cols.size();
  const double n_total = graph.matrix_total();

  std::vector<std::pair<int64_t, int64_t>> ranges = {{0, m}};
  for (int64_t begin : {int64_t{1}, int64_t{2}, int64_t{3}}) {
    if (begin <= m) ranges.emplace_back(begin, m);
  }
  if (m > 1) ranges.emplace_back(0, m - 1);
  if (m > 3) ranges.emplace_back(2, m - 1);

  for (const SimdLevel level : SupportedSimdLevels()) {
    for (const auto& [begin, end] : ranges) {
      for (const NcKernelConfig& cfg : NcConfigVariants(n_total)) {
        ExpectRangeMatchesScalar(
            [&](SimdLevel at, int64_t b, int64_t e, EdgeScore* out) {
              return NoiseCorrectedBatchAt(at, cols, cfg, b, e, out);
            },
            level, begin, end, "nc");
      }
      for (const DisparityEndpointRule rule : kDfRules) {
        ExpectRangeMatchesScalar(
            [&](SimdLevel at, int64_t b, int64_t e, EdgeScore* out) {
              return DisparityFilterBatchAt(at, cols, rule, b, e, out);
            },
            level, begin, end, "df");
      }
      ExpectRangeMatchesScalar(
          [&](SimdLevel at, int64_t b, int64_t e, EdgeScore* out) {
            return NaiveThresholdBatchAt(at, cols, b, e, out);
          },
          level, begin, end, "nt");
    }
  }
}

TEST(SimdDispatchTest, SupportedLevelsStartWithScalarAndAscend) {
  const std::vector<SimdLevel> levels = SupportedSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
  }
  for (const SimdLevel level : levels) {
    EXPECT_STRNE(SimdLevelName(level), "");
  }
}

TEST(SimdDispatchTest, ScopedOverrideForcesAndRestores) {
  const SimdLevel ambient = ActiveSimdLevel();
  {
    ScopedSimdLevelOverride scalar(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    {
      // Nested override wins, then restores the outer one.
      ScopedSimdLevelOverride best(SupportedSimdLevels().back());
      EXPECT_EQ(ActiveSimdLevel(), SupportedSimdLevels().back());
    }
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveSimdLevel(), ambient);
}

TEST(SimdDispatchTest, WideLanesImpliesAvx2Active) {
  EXPECT_EQ(SimdHasWideLanes(), ActiveSimdLevel() == SimdLevel::kAvx2);
}

/// The tail-path property sweep: every size straddling a lane boundary
/// for the widest kernel (4 lanes), i.e. 4k +- 2 for k in 0..4 — which is
/// every size in [0, 18] — in both directednesses, with and without a
/// self-loop, two weight seeds each.
TEST(SimdKernelsTest, LaneBoundarySizesMatchScalarBitwise) {
  for (int64_t m = 0; m <= 18; ++m) {
    for (const Directedness directedness :
         {Directedness::kDirected, Directedness::kUndirected}) {
      for (const bool self_loop : {false, true}) {
        for (const uint64_t seed : {uint64_t{7}, uint64_t{99}}) {
          const Graph graph =
              MakeLaneGraph(m, directedness, self_loop, seed + 31 * m);
          SCOPED_TRACE("m=" + std::to_string(m) + " directed=" +
                       std::to_string(directedness == Directedness::kDirected) +
                       " loop=" + std::to_string(self_loop) +
                       " seed=" + std::to_string(seed));
          CheckGraphAgainstScalar(graph);
        }
      }
    }
  }
}

/// Invalid NC inputs (zero-strength endpoints from an isolated zero-weight
/// edge) must surface the same lowest failing id at every level, with all
/// slots before it still bit-identical — the conservative-mask fallback
/// path. Two invalid edges prove lowest-wins.
TEST(SimdKernelsTest, InvalidEdgesReportSameFirstFailureAtEveryLevel) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 5.0);
  builder.AddEdge(0, 2, 3.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(3, 4, 0.0);  // both endpoints have zero strength
  builder.AddEdge(5, 6, 0.0);  // second invalid edge: must NOT win
  Result<Graph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const EdgeColumns& cols = graph->edge_columns();
  const double n_total = graph->matrix_total();

  // Locate the invalid ids in the canonical (src, dst)-sorted table.
  std::vector<int64_t> invalid;
  for (int64_t i = 0; i < cols.size(); ++i) {
    if (cols.weight[static_cast<size_t>(i)] == 0.0) invalid.push_back(i);
  }
  ASSERT_EQ(invalid.size(), 2u);

  for (const SimdLevel level : SupportedSimdLevels()) {
    for (const NcKernelConfig& cfg : NcConfigVariants(n_total)) {
      std::vector<EdgeScore> out(static_cast<size_t>(cols.size()));
      const int64_t bad =
          NoiseCorrectedBatchAt(level, cols, cfg, 0, cols.size(), out.data());
      EXPECT_EQ(bad, invalid[0]) << SimdLevelName(level);
      // A range that starts past the first invalid edge reports the second.
      const int64_t bad2 = NoiseCorrectedBatchAt(
          level, cols, cfg, invalid[0] + 1, cols.size(), out.data());
      EXPECT_EQ(bad2, invalid[1]) << SimdLevelName(level);
    }
    ExpectRangeMatchesScalar(
        [&](SimdLevel at, int64_t b, int64_t e, EdgeScore* out) {
          NcKernelConfig cfg;
          cfg.n_total = n_total;
          return NoiseCorrectedBatchAt(at, cols, cfg, b, e, out);
        },
        level, 0, cols.size(), "nc-invalid");
  }

  // The full NoiseCorrected sweep turns that id into the oracle's exact
  // Status, identically with and without vector kernels.
  NoiseCorrectedOptions options;
  options.num_threads = 2;
  const Result<ScoredEdges> vec = NoiseCorrected(*graph, options);
  ScopedSimdLevelOverride scalar(SimdLevel::kScalar);
  const Result<ScoredEdges> ref = NoiseCorrected(*graph, options);
  ASSERT_FALSE(vec.ok());
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(vec.status().code(), ref.status().code());
  EXPECT_EQ(vec.status().message(), ref.status().message());
}

/// A larger graph than any single chunk, scored through the public method
/// entry points: forced-scalar and ambient-level results must be bitwise
/// equal at thread counts 1, 2 and 4, and NC must match the per-edge
/// detail path (NoiseCorrectedWithDetails), which never vectorizes.
TEST(SimdKernelsTest, FullSweepsBitIdenticalAcrossLevelsAndThreads) {
  Rng rng(2026);
  GraphBuilder builder(Directedness::kUndirected,
                       DuplicateEdgePolicy::kSum, SelfLoopPolicy::kKeep);
  constexpr NodeId kNodes = 60;
  builder.ReserveNodes(kNodes);
  for (int64_t i = 0; i < 900; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(kNodes));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(kNodes));
    builder.AddEdge(a, b, static_cast<double>(rng.UniformInt(1, 20)));
  }
  Result<Graph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());

  for (const int threads : {1, 2, 4}) {
    NoiseCorrectedOptions nc;
    nc.num_threads = threads;
    DisparityFilterOptions df;
    df.num_threads = threads;
    NaiveThresholdOptions nt;
    nt.num_threads = threads;

    const Result<ScoredEdges> nc_vec = NoiseCorrected(*graph, nc);
    const Result<ScoredEdges> df_vec = DisparityFilter(*graph, df);
    const Result<ScoredEdges> nt_vec = NaiveThreshold(*graph, nt);
    ASSERT_TRUE(nc_vec.ok() && df_vec.ok() && nt_vec.ok());

    std::vector<NoiseCorrectedDetail> details;
    const Result<ScoredEdges> nc_detail =
        NoiseCorrectedWithDetails(*graph, nc, &details);
    ASSERT_TRUE(nc_detail.ok());
    EXPECT_TRUE(BitEqual(nc_vec->scores(), nc_detail->scores()))
        << "threads=" << threads;

    ScopedSimdLevelOverride scalar(SimdLevel::kScalar);
    const Result<ScoredEdges> nc_ref = NoiseCorrected(*graph, nc);
    const Result<ScoredEdges> df_ref = DisparityFilter(*graph, df);
    const Result<ScoredEdges> nt_ref = NaiveThreshold(*graph, nt);
    ASSERT_TRUE(nc_ref.ok() && df_ref.ok() && nt_ref.ok());
    EXPECT_TRUE(BitEqual(nc_vec->scores(), nc_ref->scores()))
        << "threads=" << threads;
    EXPECT_TRUE(BitEqual(df_vec->scores(), df_ref->scores()))
        << "threads=" << threads;
    EXPECT_TRUE(BitEqual(nt_vec->scores(), nt_ref->scores()))
        << "threads=" << threads;
  }
}

/// The dirty-subset patching entry (ParallelScoreEdgeRangeSubset) must
/// write bitwise the same slots the full batch computes, for an id set
/// mixing contiguous runs (vector lanes) with isolated ids (width-1
/// scalar tails), at several thread counts and grains.
TEST(SimdKernelsTest, SubsetPatchingMatchesFullBatchBitwise) {
  const Graph graph =
      MakeLaneGraph(18, Directedness::kDirected, /*with_self_loop=*/true, 5);
  const EdgeColumns& cols = graph.edge_columns();
  const int64_t m = cols.size();
  NcKernelConfig cfg;
  cfg.n_total = graph.matrix_total();

  std::vector<EdgeScore> full(static_cast<size_t>(m));
  ASSERT_EQ(NoiseCorrectedBatchAt(SimdLevel::kScalar, cols, cfg, 0, m,
                                  full.data()),
            -1);

  // Runs [2..8] and [12..15], isolated ids 0 and 10, id 17 alone at the
  // end. Ascending, as the patch contract requires.
  const std::vector<EdgeId> dirty = {0, 2, 3, 4, 5, 6, 7, 8, 10, 12, 13, 14,
                                     15, 17};
  for (const int threads : {1, 2, 4}) {
    for (const int64_t grain : {int64_t{1}, int64_t{4}, int64_t{64}}) {
      std::vector<EdgeScore> patched(static_cast<size_t>(m),
                                     EdgeScore{-1.0, -1.0});
      const Status status = ParallelScoreEdgeRangeSubset(
          dirty, threads, grain,
          [&](int64_t begin, int64_t end, EdgeScore* out) {
            return NoiseCorrectedBatch(cols, cfg, begin, end, out);
          },
          [](EdgeId) { return Status::OK(); }, &patched);
      ASSERT_TRUE(status.ok()) << status.message();
      std::vector<bool> is_dirty(static_cast<size_t>(m), false);
      for (const EdgeId id : dirty) is_dirty[static_cast<size_t>(id)] = true;
      for (int64_t i = 0; i < m; ++i) {
        if (is_dirty[static_cast<size_t>(i)]) {
          EXPECT_TRUE(BitEqual(patched[static_cast<size_t>(i)],
                               full[static_cast<size_t>(i)]))
              << "threads=" << threads << " grain=" << grain << " id=" << i;
        } else {
          EXPECT_EQ(patched[static_cast<size_t>(i)].score, -1.0)
              << "untouched slot overwritten, id=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace netbone
