// Tests for the common substrate: Status, Result, RNG, strings, timer.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace netbone {
namespace {

// ---------------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::OK());
}

TEST(StatusTest, CategoriesAndMessages) {
  const Status s = Status::InvalidArgument("bad delta");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsNotFound());
  EXPECT_EQ(s.message(), "bad delta");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad delta");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

namespace {
Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Result<int> QuarterViaMacro(int x) {
  NETBONE_ASSIGN_OR_RETURN(const int half, Half(x));
  return Half(half);
}
Status CheckEven(int x) {
  NETBONE_RETURN_IF_ERROR(Half(x).status());
  return Status::OK();
}
}  // namespace

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  const auto ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterViaMacro(7).ok());
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool any_difference = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, BoundedCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.NextBounded(10)]++;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(21);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.08);
}

TEST(RngTest, PoissonMomentsSmallAndLargeMean) {
  Rng rng(23);
  for (const double mean : {0.5, 4.0, 200.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BinomialMoments) {
  Rng rng(29);
  for (const auto& [n_trials, p] :
       std::vector<std::pair<int64_t, double>>{{10, 0.3},
                                               {1000, 0.01},
                                               {100000, 0.4}}) {
    double sum = 0.0;
    const int reps = 20000;
    for (int i = 0; i < reps; ++i) {
      const int64_t draw = rng.Binomial(n_trials, p);
      EXPECT_GE(draw, 0);
      EXPECT_LE(draw, n_trials);
      sum += static_cast<double>(draw);
    }
    const double expected = static_cast<double>(n_trials) * p;
    EXPECT_NEAR(sum / reps, expected, expected * 0.05 + 0.1);
  }
}

TEST(RngTest, BinomialDegenerateCases) {
  Rng rng(1);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(41);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 2.0), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 1e-3 "), 1e-3);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64(" 42 "), 42);
  EXPECT_FALSE(ParseInt64("3.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("noise_corrected", "noise"));
  EXPECT_FALSE(StartsWith("nc", "noise"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "k", 7), "k=7");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// ---------------------------------------------------------------------------
// Timer.
// ---------------------------------------------------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3 - 1e3);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace netbone
