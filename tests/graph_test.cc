// Tests for the graph substrate: builder policies, marginals (the N_i.,
// N_.j, N_.. every null model consumes), lookups, labels, isolates.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace netbone {
namespace {

TEST(GraphBuilderTest, BuildsDirectedGraphWithMarginals) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(0, 2, 2.0);
  builder.AddEdge(2, 1, 4.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_DOUBLE_EQ(g->total_weight(), 9.0);
  EXPECT_DOUBLE_EQ(g->matrix_total(), 9.0);
  EXPECT_DOUBLE_EQ(g->out_strength(0), 5.0);
  EXPECT_DOUBLE_EQ(g->in_strength(1), 7.0);
  EXPECT_DOUBLE_EQ(g->in_strength(0), 0.0);
  EXPECT_EQ(g->out_degree(0), 2);
  EXPECT_EQ(g->in_degree(1), 2);
}

TEST(GraphBuilderTest, UndirectedMarginalsAreSymmetric) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 3.0);
  builder.AddEdge(1, 2, 4.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  // Symmetric matrix view: N_.. counts each undirected edge twice.
  EXPECT_DOUBLE_EQ(g->total_weight(), 7.0);
  EXPECT_DOUBLE_EQ(g->matrix_total(), 14.0);
  EXPECT_DOUBLE_EQ(g->out_strength(1), 7.0);
  EXPECT_DOUBLE_EQ(g->in_strength(1), 7.0);
  EXPECT_EQ(g->out_degree(1), 2);
}

TEST(GraphBuilderTest, UndirectedEdgesAreCanonicalized) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(5, 2, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->edge(0).src, 2);
  EXPECT_EQ(g->edge(0).dst, 5);
  EXPECT_DOUBLE_EQ(g->WeightOf(5, 2), 1.0);
  EXPECT_DOUBLE_EQ(g->WeightOf(2, 5), 1.0);
}

TEST(GraphBuilderTest, DuplicateSumPolicyAccumulates) {
  GraphBuilder builder(Directedness::kDirected, DuplicateEdgePolicy::kSum);
  builder.AddEdge(0, 1, 1.5);
  builder.AddEdge(0, 1, 2.5);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_DOUBLE_EQ(g->edge(0).weight, 4.0);
}

TEST(GraphBuilderTest, DuplicateMaxPolicyKeepsHeaviest) {
  GraphBuilder builder(Directedness::kDirected, DuplicateEdgePolicy::kMax);
  builder.AddEdge(0, 1, 1.5);
  builder.AddEdge(0, 1, 2.5);
  builder.AddEdge(0, 1, 0.5);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->edge(0).weight, 2.5);
}

TEST(GraphBuilderTest, DuplicateErrorPolicyFails) {
  GraphBuilder builder(Directedness::kDirected,
                       DuplicateEdgePolicy::kError);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(0, 1, 2.0);
  const auto g = builder.Build();
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, UndirectedReversedDuplicatesMerge) {
  GraphBuilder builder(Directedness::kUndirected,
                       DuplicateEdgePolicy::kSum);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 0, 2.0);  // same undirected pair
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_DOUBLE_EQ(g->edge(0).weight, 3.0);
}

TEST(GraphBuilderTest, SelfLoopDropPolicySilentlyDiscards) {
  GraphBuilder builder(Directedness::kDirected, DuplicateEdgePolicy::kSum,
                       SelfLoopPolicy::kDrop);
  builder.AddEdge(2, 2, 5.0);
  builder.AddEdge(0, 1, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->num_nodes(), 3);  // node 2 still exists (as isolate)
  EXPECT_EQ(g->CountIsolates(), 1);
}

TEST(GraphBuilderTest, SelfLoopKeepPolicyStoresDiagonal) {
  GraphBuilder builder(Directedness::kUndirected, DuplicateEdgePolicy::kSum,
                       SelfLoopPolicy::kKeep);
  builder.AddEdge(0, 0, 5.0);
  builder.AddEdge(0, 1, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  // Diagonal counts once in the symmetric matrix total: 2*1 + 5.
  EXPECT_DOUBLE_EQ(g->matrix_total(), 7.0);
}

TEST(GraphBuilderTest, SelfLoopErrorPolicyFails) {
  GraphBuilder builder(Directedness::kDirected, DuplicateEdgePolicy::kSum,
                       SelfLoopPolicy::kError);
  builder.AddEdge(1, 1, 1.0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsNegativeWeight) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, -1.0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsNonFiniteWeight) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsNegativeNodeId) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(-1, 1, 1.0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, ReserveNodesCreatesIsolates) {
  GraphBuilder builder(Directedness::kDirected);
  builder.ReserveNodes(10);
  builder.AddEdge(0, 1, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 10);
  EXPECT_EQ(g->CountIsolates(), 8);
}

TEST(GraphBuilderTest, LabeledEdgesInternAndResolve) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddLabeledEdge("USA", "DEU", 7.0);
  builder.AddLabeledEdge("DEU", "JPN", 3.0);
  builder.AddLabeledEdge("USA", "JPN", 2.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->has_labels());
  EXPECT_EQ(g->LabelOf(0), "USA");
  const auto deu = g->FindLabel("DEU");
  ASSERT_TRUE(deu.ok());
  EXPECT_DOUBLE_EQ(g->WeightOf(*g->FindLabel("USA"), *deu), 7.0);
  EXPECT_FALSE(g->FindLabel("FRA").ok());
}

TEST(GraphTest, FindEdgeReturnsMinusOneWhenAbsent) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->FindEdge(1, 0), -1);
  EXPECT_GE(g->FindEdge(0, 1), 0);
  EXPECT_DOUBLE_EQ(g->WeightOf(1, 0), 0.0);
}

TEST(GraphTest, EdgesAreSortedBySrcThenDst) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(2, 0, 1.0);
  builder.AddEdge(0, 2, 1.0);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  for (EdgeId id = 1; id < g->num_edges(); ++id) {
    const Edge& prev = g->edge(id - 1);
    const Edge& cur = g->edge(id);
    EXPECT_TRUE(prev.src < cur.src ||
                (prev.src == cur.src && prev.dst < cur.dst));
  }
}

TEST(GraphTest, EmptyGraphBasics) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.ReserveNodes(4);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 0);
  EXPECT_EQ(g->CountIsolates(), 4);
  EXPECT_DOUBLE_EQ(g->total_weight(), 0.0);
}

TEST(GraphTest, LabelOfFallsBackToDecimalId) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->has_labels());
  EXPECT_EQ(g->LabelOf(1), "1");
}

TEST(GraphTest, MixedLabeledAndPlainIdsGetPlaceholders) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddLabeledEdge("A", "B", 1.0);
  builder.AddEdge(2, 3, 1.0);  // ids beyond the label table
  const auto g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->LabelOf(0), "A");
  EXPECT_EQ(g->LabelOf(3), "3");
}

}  // namespace
}  // namespace netbone
