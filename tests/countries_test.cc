// Tests for the synthetic country-network suite (the stand-in for the
// paper's six proprietary datasets; DESIGN.md §4). These tests pin the
// statistical properties the substitution must preserve: broad weights,
// local weight correlation, density, multi-year consistency, and
// well-posed predictor tables.

#include "gen/countries.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace netbone {
namespace {

class CountrySuiteTest : public ::testing::Test {
 protected:
  // One modest suite shared by every test in this binary (generation is
  // the expensive part).
  static void SetUpTestSuite() {
    static Result<CountrySuite> holder =
        GenerateCountrySuite(/*seed=*/42, /*num_years=*/3,
                             /*num_countries=*/80);
    ASSERT_TRUE(holder.ok()) << holder.status().ToString();
    suite_ = &*holder;
  }
  static const CountrySuite* suite_;
};

const CountrySuite* CountrySuiteTest::suite_ = nullptr;

TEST_F(CountrySuiteTest, WorldHasConsistentShapes) {
  const CountryWorld& world = suite_->world;
  EXPECT_EQ(world.names.size(), 80u);
  EXPECT_EQ(world.population.size(), 80u);
  EXPECT_EQ(world.language.size(), 80u);
  EXPECT_EQ(world.exports.size(),
            80u * static_cast<size_t>(world.options.num_products));
  for (const double p : world.population) EXPECT_GT(p, 0.0);
  for (const double g : world.gdp_per_capita) EXPECT_GT(g, 0.0);
}

TEST_F(CountrySuiteTest, AllSixNetworksPresent) {
  EXPECT_EQ(suite_->networks.size(), 6u);
  for (const CountryNetworkKind kind : AllCountryNetworkKinds()) {
    const TemporalNetwork& net = suite_->network(kind);
    EXPECT_EQ(net.num_snapshots(), 3) << CountryNetworkName(kind);
    EXPECT_EQ(net.num_nodes(), 80) << CountryNetworkName(kind);
    EXPECT_EQ(net.front().directed(), CountryNetworkDirected(kind));
    EXPECT_GT(net.front().num_edges(), 0);
  }
}

TEST_F(CountrySuiteTest, DistanceIsAMetricStandIn) {
  const CountryWorld& world = suite_->world;
  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = 0; j < 10; ++j) {
      EXPECT_GT(world.Distance(i, j), 0.0);
      EXPECT_DOUBLE_EQ(world.Distance(i, j), world.Distance(j, i));
    }
  }
}

TEST_F(CountrySuiteTest, NetworksAreDenseHairballs) {
  // The raw networks must be dense enough that backboning is needed: at
  // least a third of all ordered pairs carry weight in the flow networks.
  const Graph& trade = suite_->network(CountryNetworkKind::kTrade).front();
  const double pairs = 80.0 * 79.0;
  EXPECT_GT(static_cast<double>(trade.num_edges()) / pairs, 0.33);
}

TEST_F(CountrySuiteTest, WeightsAreBroad) {
  // Fig. 5's qualitative property: weights span several orders of
  // magnitude (Trade is the widest in the paper).
  const Graph& trade = suite_->network(CountryNetworkKind::kTrade).front();
  std::vector<double> weights;
  for (const Edge& e : trade.edges()) weights.push_back(e.weight);
  const double q01 = Quantile(weights, 0.01);
  const double q99 = Quantile(weights, 0.99);
  // Several orders of magnitude between the 1st and 99th percentile even
  // in this reduced 80-country test configuration.
  EXPECT_GT(q99 / std::max(q01, 1.0), 500.0);
}

TEST_F(CountrySuiteTest, OwnershipIsExtremelySkewed) {
  // Paper: Ownership's median non-zero weight is ~1.5 while the top 1%
  // exceeds 50k — a heavy tail. We pin the shape: median small relative
  // to the 99th percentile by orders of magnitude.
  const Graph& own =
      suite_->network(CountryNetworkKind::kOwnership).front();
  std::vector<double> weights;
  for (const Edge& e : own.edges()) weights.push_back(e.weight);
  const double median = Median(weights);
  const double q99 = Quantile(weights, 0.99);
  EXPECT_LT(median, 20.0);
  EXPECT_GT(q99 / std::max(median, 1.0), 50.0);
}

TEST_F(CountrySuiteTest, EdgeWeightsAreLocallyCorrelated) {
  // Fig. 6's property: an edge's weight correlates (log-log) with the
  // average weight of the edges incident to its endpoints.
  const Graph& flight =
      suite_->network(CountryNetworkKind::kFlight).front();
  std::vector<double> node_strength_share(
      static_cast<size_t>(flight.num_nodes()));
  for (NodeId v = 0; v < flight.num_nodes(); ++v) {
    const int64_t degree = flight.out_degree(v) + flight.in_degree(v);
    node_strength_share[static_cast<size_t>(v)] =
        degree > 0
            ? (flight.out_strength(v) + flight.in_strength(v)) /
                  static_cast<double>(degree)
            : 0.0;
  }
  std::vector<double> weights, neighbor_avgs;
  for (const Edge& e : flight.edges()) {
    weights.push_back(e.weight);
    neighbor_avgs.push_back(
        (node_strength_share[static_cast<size_t>(e.src)] +
         node_strength_share[static_cast<size_t>(e.dst)]) /
        2.0);
  }
  const auto corr = LogLogPearsonCorrelation(weights, neighbor_avgs);
  ASSERT_TRUE(corr.ok());
  EXPECT_GT(*corr, 0.3);  // paper range: .42 to .75
}

TEST_F(CountrySuiteTest, YearsShareStructure) {
  // Consecutive years are noisy re-observations of one latent structure:
  // their common edges' weights must correlate strongly.
  const TemporalNetwork& migration =
      suite_->network(CountryNetworkKind::kMigration);
  std::vector<double> w0, w1;
  for (const Edge& e : migration.snapshot(0).edges()) {
    const double other = migration.snapshot(1).WeightOf(e.src, e.dst);
    if (other > 0.0) {
      w0.push_back(e.weight);
      w1.push_back(other);
    }
  }
  ASSERT_GT(w0.size(), 100u);
  const auto corr = SpearmanCorrelation(w0, w1);
  ASSERT_TRUE(corr.ok());
  EXPECT_GT(*corr, 0.8);
}

TEST_F(CountrySuiteTest, CountrySpaceIsUndirectedCoOccurrence) {
  const Graph& cs =
      suite_->network(CountryNetworkKind::kCountrySpace).front();
  EXPECT_FALSE(cs.directed());
  // Co-occurrence counts are integers bounded by the product count.
  for (const Edge& e : cs.edges()) {
    EXPECT_DOUBLE_EQ(e.weight, std::round(e.weight));
    EXPECT_LE(e.weight,
              static_cast<double>(suite_->world.options.num_products));
  }
}

TEST_F(CountrySuiteTest, PredictorTablesMatchEdgeCounts) {
  for (const CountryNetworkKind kind : AllCountryNetworkKinds()) {
    const Graph& snapshot = suite_->network(kind).front();
    const auto table = CountryPredictors(*suite_, kind, snapshot);
    ASSERT_TRUE(table.ok()) << CountryNetworkName(kind);
    ASSERT_EQ(table->names.size(), table->columns.size());
    EXPECT_GE(table->columns.size(), 1u);
    for (const auto& column : table->columns) {
      EXPECT_EQ(static_cast<int64_t>(column.size()), snapshot.num_edges())
          << CountryNetworkName(kind);
    }
  }
}

TEST_F(CountrySuiteTest, PredictorSetsFollowThePaper) {
  const Graph& migration =
      suite_->network(CountryNetworkKind::kMigration).front();
  const auto migration_table =
      CountryPredictors(*suite_, CountryNetworkKind::kMigration, migration);
  ASSERT_TRUE(migration_table.ok());
  // Migration: distance, populations, language, region — five columns.
  EXPECT_EQ(migration_table->names.size(), 5u);

  const Graph& flight =
      suite_->network(CountryNetworkKind::kFlight).front();
  const auto flight_table =
      CountryPredictors(*suite_, CountryNetworkKind::kFlight, flight);
  ASSERT_TRUE(flight_table.ok());
  // Flight: gravity controls only (paper: "no additional variable").
  EXPECT_EQ(flight_table->names.size(), 3u);

  const Graph& cs =
      suite_->network(CountryNetworkKind::kCountrySpace).front();
  const auto cs_table =
      CountryPredictors(*suite_, CountryNetworkKind::kCountrySpace, cs);
  ASSERT_TRUE(cs_table.ok());
  // Country Space: distance + two ECI columns, no populations.
  EXPECT_EQ(cs_table->names.size(), 3u);
}

TEST_F(CountrySuiteTest, GenerationIsDeterministic) {
  const auto again = GenerateCountrySuite(42, 3, 80);
  ASSERT_TRUE(again.ok());
  const Graph& a = suite_->network(CountryNetworkKind::kTrade).front();
  const Graph& b = again->network(CountryNetworkKind::kTrade).front();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId id = 0; id < a.num_edges(); ++id) {
    EXPECT_EQ(a.edge(id), b.edge(id));
  }
}

TEST_F(CountrySuiteTest, NoiseScaleZeroShrinksEdgeCount) {
  CountryNetworkOptions noiseless;
  noiseless.num_years = 1;
  noiseless.seed = 59;
  noiseless.noise_scale = 0.0;
  CountryNetworkOptions noisy = noiseless;
  noisy.noise_scale = 1.0;
  const auto clean = GenerateCountryNetwork(
      suite_->world, CountryNetworkKind::kFlight, noiseless);
  const auto dirty = GenerateCountryNetwork(
      suite_->world, CountryNetworkKind::kFlight, noisy);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dirty.ok());
  EXPECT_LT(clean->front().num_edges(), dirty->front().num_edges());
}

TEST(CountryWorldTest, RejectsTinyWorlds) {
  CountryWorldOptions options;
  options.num_countries = 3;
  EXPECT_FALSE(GenerateCountryWorld(options).ok());
}

TEST(CountryNetworkTest, RejectsZeroYears) {
  const auto world = GenerateCountryWorld({.num_countries = 20});
  ASSERT_TRUE(world.ok());
  CountryNetworkOptions options;
  options.num_years = 0;
  EXPECT_FALSE(GenerateCountryNetwork(*world,
                                      CountryNetworkKind::kTrade, options)
                   .ok());
}

TEST(CountryNetworkTest, NamesAreStable) {
  EXPECT_EQ(CountryNetworkName(CountryNetworkKind::kBusiness), "Business");
  EXPECT_EQ(CountryNetworkName(CountryNetworkKind::kCountrySpace),
            "Country Space");
  EXPECT_EQ(CountryNetworkName(CountryNetworkKind::kTrade), "Trade");
  EXPECT_FALSE(CountryNetworkDirected(CountryNetworkKind::kCountrySpace));
  EXPECT_TRUE(CountryNetworkDirected(CountryNetworkKind::kOwnership));
}

}  // namespace
}  // namespace netbone
