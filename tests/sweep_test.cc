// Tests for the one-sort threshold-sweep engine (core/sweep.h,
// eval/sweep_metrics.h): batch Coverage and stopping-index results must be
// element-wise identical to the per-point TopShare + CoverageOfMask /
// GrowUntilConnected path on directed, undirected, tied-score, and
// disconnected graphs, at every thread count; and a whole sweep must
// perform exactly one score sort per method (ScoreOrder::SortsPerformed).

#include "core/sweep.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/registry.h"
#include "eval/coverage.h"
#include "eval/edge_budget.h"
#include "eval/stability.h"
#include "eval/sweep_metrics.h"
#include "gen/erdos_renyi.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/temporal.h"

namespace netbone {
namespace {

std::vector<double> FiftyShares() {
  std::vector<double> shares;
  for (int p = 1; p <= 50; ++p) {
    shares.push_back(static_cast<double>(p) / 50.0);
  }
  return shares;
}

Graph MakeWeightedPath() {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 3.0);
  builder.AddEdge(3, 4, 4.0);
  builder.AddEdge(4, 5, 5.0);
  return *builder.Build();
}

Graph MakeTiedScores() {
  // All weights equal: every score ties, so ordering falls through to the
  // id tie-break — the case where a sloppy comparator would diverge.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 2.0);
  builder.AddEdge(2, 3, 2.0);
  builder.AddEdge(3, 4, 2.0);
  builder.AddEdge(0, 4, 2.0);
  return *builder.Build();
}

Graph MakeDisconnected() {
  // Two components plus an isolate: GrowUntilConnected can never cover
  // the target in one component, so it must keep every edge.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 5.0);
  builder.AddEdge(1, 2, 4.0);
  builder.AddEdge(3, 4, 3.0);
  builder.AddEdge(4, 5, 2.0);
  builder.ReserveNodes(7);  // node 6 is an isolate
  return *builder.Build();
}

Graph MakeDirected() {
  return *GenerateErdosRenyi({.num_nodes = 120,
                              .average_degree = 4.0,
                              .directedness = Directedness::kDirected,
                              .seed = 11});
}

Graph MakeUndirected() {
  return *GenerateErdosRenyi({.num_nodes = 120,
                              .average_degree = 4.0,
                              .directedness = Directedness::kUndirected,
                              .seed = 13});
}

// ---------------------------------------------------------------------------
// ScoreOrder basics.
// ---------------------------------------------------------------------------

TEST(ScoreOrderTest, PrefixMaskMatchesTopK) {
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  for (int64_t k = -1; k <= g.num_edges() + 2; ++k) {
    const BackboneMask batch = order.PrefixMask(k);
    const BackboneMask single = TopK(*nt, k);
    EXPECT_EQ(batch.keep, single.keep) << "k=" << k;
    EXPECT_EQ(batch.kept, single.kept) << "k=" << k;
  }
}

TEST(ScoreOrderTest, TopShareOverloadMatchesPerPoint) {
  for (const Graph& g : {MakeWeightedPath(), MakeTiedScores(),
                         MakeDisconnected(), MakeDirected()}) {
    const auto nt = NaiveThreshold(g);
    ASSERT_TRUE(nt.ok());
    const ScoreOrder order(*nt);
    for (const double share : FiftyShares()) {
      const BackboneMask batch = TopShare(order, share);
      const BackboneMask single = TopShare(*nt, share);
      EXPECT_EQ(batch.keep, single.keep) << "share=" << share;
      EXPECT_EQ(batch.kept, single.kept) << "share=" << share;
    }
  }
}

TEST(ScoreOrderTest, OrderIsDescendingWithDeterministicTieBreak) {
  const Graph g = MakeTiedScores();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  ASSERT_EQ(order.size(), g.num_edges());
  for (int64_t rank = 0; rank + 1 < order.size(); ++rank) {
    const EdgeId a = order.id_at(rank);
    const EdgeId b = order.id_at(rank + 1);
    const double sa = nt->at(a).score;
    const double sb = nt->at(b).score;
    EXPECT_GE(sa, sb);
    if (sa == sb && g.edge(a).weight == g.edge(b).weight) {
      EXPECT_LT(a, b);  // ties break toward the lower edge id
    }
  }
}

TEST(ScoreOrderTest, CountAboveMatchesLinearScan) {
  const Graph g = MakeDirected();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  for (const double threshold : {-1.0, 0.0, 0.5, 1.0, 2.5, 100.0}) {
    EXPECT_EQ(CountAboveScore(order, threshold),
              CountAboveScore(*nt, threshold))
        << "threshold=" << threshold;
  }
}

TEST(ScoreOrderTest, KForShareMatchesTopShareRounding) {
  const Graph g = MakeWeightedPath();  // 5 edges
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  EXPECT_EQ(order.KForShare(0.0), 0);
  EXPECT_EQ(order.KForShare(0.4), 2);
  EXPECT_EQ(order.KForShare(0.5), 3);  // llround(2.5) = 3
  EXPECT_EQ(order.KForShare(1.0), 5);
  EXPECT_EQ(order.KForShare(-2.0), 0);  // clamped
  EXPECT_EQ(order.KForShare(7.0), 5);   // clamped
}

// ---------------------------------------------------------------------------
// The one-sort contract.
// ---------------------------------------------------------------------------

TEST(SweepEngineTest, FiftyPointSweepSortsExactlyOncePerMethod) {
  const Graph g = MakeUndirected();
  const std::vector<double> shares = FiftyShares();
  const std::vector<Method> methods = {Method::kNaiveThreshold,
                                       Method::kDisparityFilter,
                                       Method::kNoiseCorrected};
  std::vector<Result<ScoredEdges>> scored;
  for (const Method m : methods) scored.push_back(RunMethod(m, g));

  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  for (const auto& table : scored) {
    ASSERT_TRUE(table.ok());
    const ScoreOrder order(*table);
    const auto coverage = CoverageSweep(order, shares);
    ASSERT_TRUE(coverage.ok());
    EXPECT_EQ(coverage->size(), shares.size());
  }
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before,
            static_cast<int64_t>(methods.size()));
}

TEST(SweepEngineTest, PerPointPathSortsOncePerPoint) {
  // The contrast case documenting what the batch API saves.
  const Graph g = MakeWeightedPath();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  for (const double share : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    TopShare(*nt, share);
  }
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before, 5);
}

// ---------------------------------------------------------------------------
// Batch Coverage vs per-point, across graph shapes and thread counts.
// ---------------------------------------------------------------------------

void ExpectBatchCoverageMatchesPerPoint(const Graph& g) {
  const std::vector<double> shares = FiftyShares();
  const std::vector<Method> methods = {Method::kNaiveThreshold,
                                       Method::kDisparityFilter,
                                       Method::kNoiseCorrected};
  for (const int threads : {1, 2, 8}) {
    RunMethodOptions options;
    options.num_threads = threads;
    const auto sweeps = CoverageSweepByMethod(g, methods, shares, options);
    ASSERT_EQ(sweeps.size(), methods.size());
    for (size_t i = 0; i < methods.size(); ++i) {
      const auto scored = RunMethod(methods[i], g, options);
      ASSERT_TRUE(scored.ok()) << MethodName(methods[i]);
      ASSERT_TRUE(sweeps[i].status.ok()) << MethodName(methods[i]);
      ASSERT_EQ(sweeps[i].coverage.size(), shares.size());
      for (size_t s = 0; s < shares.size(); ++s) {
        const auto per_point =
            CoverageOfMask(g, TopShare(*scored, shares[s]));
        ASSERT_TRUE(per_point.ok());
        // Element-wise identical, not just close: both paths divide the
        // same two integers.
        EXPECT_EQ(sweeps[i].coverage[s], *per_point)
            << MethodName(methods[i]) << " share " << shares[s]
            << " threads " << threads;
      }
    }
  }
}

TEST(SweepEngineTest, CoverageMatchesPerPointUndirected) {
  ExpectBatchCoverageMatchesPerPoint(MakeUndirected());
}

TEST(SweepEngineTest, CoverageMatchesPerPointDirected) {
  ExpectBatchCoverageMatchesPerPoint(MakeDirected());
}

TEST(SweepEngineTest, CoverageMatchesPerPointTiedScores) {
  ExpectBatchCoverageMatchesPerPoint(MakeTiedScores());
}

TEST(SweepEngineTest, CoverageMatchesPerPointDisconnected) {
  ExpectBatchCoverageMatchesPerPoint(MakeDisconnected());
}

TEST(SweepEngineTest, CoverageAtShareMatchesCoverageOfMask) {
  const Graph g = MakeUndirected();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  for (const double share : {0.02, 0.1, 0.5, 1.0}) {
    const auto at_share = CoverageAtShare(order, share);
    const auto of_mask = CoverageOfMask(g, TopShare(*nt, share));
    ASSERT_TRUE(at_share.ok());
    ASSERT_TRUE(of_mask.ok());
    EXPECT_EQ(*at_share, *of_mask) << "share=" << share;
  }
}

TEST(SweepEngineTest, MethodFailureIsReportedPerMethod) {
  // DS cannot balance a directed graph where some node only sends; the
  // per-method status must carry that error while other methods succeed.
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 1, 1.0);  // node 0 never receives
  const Graph g = *builder.Build();
  const std::vector<Method> methods = {Method::kNaiveThreshold,
                                       Method::kDoublyStochastic};
  const std::vector<double> shares = {0.5, 1.0};
  const auto sweeps = CoverageSweepByMethod(g, methods, shares);
  ASSERT_EQ(sweeps.size(), 2u);
  EXPECT_TRUE(sweeps[0].status.ok());
  EXPECT_EQ(sweeps[0].coverage.size(), shares.size());
  EXPECT_FALSE(sweeps[1].status.ok());
  EXPECT_TRUE(sweeps[1].coverage.empty());
}

// ---------------------------------------------------------------------------
// Stopping index / GrowUntilConnected.
// ---------------------------------------------------------------------------

void ExpectGrowMatchesAndProfileAgrees(const Graph& g) {
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  const BackboneMask batch = GrowUntilConnected(order);
  const BackboneMask single = GrowUntilConnected(*nt);
  EXPECT_EQ(batch.keep, single.keep);
  EXPECT_EQ(batch.kept, single.kept);
  // The profile's stopping index is the same prefix the masks keep.
  const SweepProfile profile = BuildSweepProfile(order);
  EXPECT_EQ(profile.connect_k, batch.kept);
  const BackboneMask prefix = order.PrefixMask(profile.connect_k);
  EXPECT_EQ(prefix.keep, batch.keep);
}

TEST(SweepEngineTest, GrowUntilConnectedMatchesPerPointPath) {
  ExpectGrowMatchesAndProfileAgrees(MakeWeightedPath());
}

TEST(SweepEngineTest, GrowUntilConnectedMatchesPerPointTied) {
  ExpectGrowMatchesAndProfileAgrees(MakeTiedScores());
}

TEST(SweepEngineTest, GrowUntilConnectedMatchesPerPointUndirectedEr) {
  ExpectGrowMatchesAndProfileAgrees(MakeUndirected());
}

TEST(SweepEngineTest, GrowUntilConnectedKeepsEverythingWhenDisconnected) {
  const Graph g = MakeDisconnected();
  ExpectGrowMatchesAndProfileAgrees(g);
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  const SweepProfile profile = BuildSweepProfile(order);
  EXPECT_EQ(profile.connect_k, g.num_edges());  // never connects
}

TEST(SweepEngineTest, StoppingIndexIsMinimal) {
  // A clique with a clear winner prefix: the profile index must be the
  // smallest connecting prefix, and the materialized backbone connected.
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 10.0);
  builder.AddEdge(0, 2, 9.0);
  builder.AddEdge(0, 3, 8.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(1, 3, 1.0);
  builder.AddEdge(2, 3, 1.0);
  const Graph g = *builder.Build();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  const SweepProfile profile = BuildSweepProfile(order);
  EXPECT_EQ(profile.connect_k, 3);
  const auto backbone = ApplyMask(g, order.PrefixMask(profile.connect_k));
  ASSERT_TRUE(backbone.ok());
  EXPECT_TRUE(IsConnected(*backbone));
  // One edge fewer must not connect all four nodes.
  const auto shorter = ApplyMask(g, order.PrefixMask(profile.connect_k - 1));
  ASSERT_TRUE(shorter.ok());
  EXPECT_FALSE(IsConnected(*shorter));
}

// ---------------------------------------------------------------------------
// SweepProfile invariants.
// ---------------------------------------------------------------------------

TEST(SweepProfileTest, PrefixArraysAreConsistent) {
  const Graph g = MakeUndirected();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const ScoreOrder order(*nt);
  const SweepProfile profile = BuildSweepProfile(order);
  ASSERT_EQ(profile.covered_nodes.size(),
            static_cast<size_t>(g.num_edges()) + 1);
  ASSERT_EQ(profile.kept_weight.size(),
            static_cast<size_t>(g.num_edges()) + 1);
  EXPECT_EQ(profile.covered_nodes.front(), 0);
  EXPECT_DOUBLE_EQ(profile.kept_weight.front(), 0.0);
  double weight = 0.0;
  for (int64_t k = 0; k < g.num_edges(); ++k) {
    // Monotone coverage, each edge adds at most 2 newly-covered nodes.
    const int64_t delta = profile.covered_nodes[static_cast<size_t>(k) + 1] -
                          profile.covered_nodes[static_cast<size_t>(k)];
    EXPECT_GE(delta, 0);
    EXPECT_LE(delta, 2);
    weight += g.edge(order.id_at(k)).weight;
    EXPECT_DOUBLE_EQ(profile.kept_weight[static_cast<size_t>(k) + 1],
                     weight);
  }
  EXPECT_EQ(profile.covered_nodes.back(), profile.target_nodes);
  EXPECT_DOUBLE_EQ(profile.WeightShareAt(g.num_edges()), 1.0);
  EXPECT_DOUBLE_EQ(profile.CoverageAt(g.num_edges()), 1.0);
}

TEST(SweepProfileTest, TargetExcludesIsolates) {
  const Graph g = MakeDisconnected();  // 6 connected nodes + 1 isolate
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const SweepProfile profile = BuildSweepProfile(ScoreOrder(*nt));
  EXPECT_EQ(profile.target_nodes, 6);
}

// ---------------------------------------------------------------------------
// StabilitySweep vs per-point MeanStability.
// ---------------------------------------------------------------------------

TemporalNetwork MakeTemporal() {
  // Three snapshots with drifting weights over a fixed edge set.
  std::vector<Graph> years;
  for (int year = 0; year < 3; ++year) {
    GraphBuilder builder(Directedness::kUndirected);
    double w = 1.0;
    for (NodeId v = 0; v < 12; ++v) {
      builder.AddEdge(v, (v + 1) % 12, w + 0.3 * year);
      builder.AddEdge(v, (v + 3) % 12, 2.0 * w);
      w += 0.7;
    }
    years.push_back(*builder.Build());
  }
  return *TemporalNetwork::Create(std::move(years), "drift");
}

TEST(StabilitySweepTest, MatchesPerPointMeanStability) {
  const TemporalNetwork network = MakeTemporal();
  const std::vector<double> shares = {0.25, 0.5, 0.75, 1.0};
  for (const Method method :
       {Method::kNaiveThreshold, Method::kDisparityFilter}) {
    for (const int threads : {1, 2, 8}) {
      RunMethodOptions options;
      options.num_threads = threads;
      const auto sweep = StabilitySweep(network, method, shares, options);
      ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
      ASSERT_EQ(sweep->size(), shares.size());
      for (size_t s = 0; s < shares.size(); ++s) {
        const auto per_point = MeanStability(
            network, [&](const Graph& year) {
              Result<ScoredEdges> scored = RunMethod(method, year, options);
              if (!scored.ok()) {
                return Result<BackboneMask>(scored.status());
              }
              return Result<BackboneMask>(TopShare(*scored, shares[s]));
            });
        ASSERT_TRUE(per_point.ok());
        ASSERT_TRUE((*sweep)[s].ok());
        EXPECT_EQ(*(*sweep)[s], *per_point)
            << MethodName(method) << " share " << shares[s] << " threads "
            << threads;
      }
    }
  }
}

TEST(StabilitySweepTest, SinglePointWrapperMatchesBatch) {
  const TemporalNetwork network = MakeTemporal();
  const auto wrapper =
      MeanStability(network, Method::kNaiveThreshold, 0.5);
  ASSERT_TRUE(wrapper.ok());
  const std::vector<double> one = {0.5};
  const auto batch = StabilitySweep(network, Method::kNaiveThreshold, one);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->front().ok());
  EXPECT_EQ(*wrapper, *batch->front());
}

TEST(StabilitySweepTest, TinySharesFailPerShareNotWholesale) {
  const TemporalNetwork network = MakeTemporal();
  // share 0 keeps no edges -> Stability undefined for that share only.
  const std::vector<double> shares = {0.0, 1.0};
  const auto sweep =
      StabilitySweep(network, Method::kNaiveThreshold, shares);
  ASSERT_TRUE(sweep.ok());
  EXPECT_FALSE((*sweep)[0].ok());
  EXPECT_TRUE((*sweep)[1].ok());
}

TEST(StabilitySweepTest, NeedsTwoSnapshots) {
  std::vector<Graph> one = {MakeWeightedPath()};
  const auto network = TemporalNetwork::Create(std::move(one), "single");
  ASSERT_TRUE(network.ok());
  const std::vector<double> shares = {1.0};
  EXPECT_FALSE(
      StabilitySweep(*network, Method::kNaiveThreshold, shares).ok());
}

}  // namespace
}  // namespace netbone
