// Tests for the parallel-execution subsystem (common/parallel.h) — the
// work-stealing TaskScheduler/TaskGroup runtime and the legacy
// ThreadPool — the ParallelScoreEdges helper, the reusable Dijkstra
// workspace, and the determinism guarantees of the threaded scoring
// paths: identical scores for every thread count and steal order,
// serial-equivalent first-error-wins status aggregation, seeded
// reproducibility of the sampled HSS mode, and the one-sort-per-method
// contract under the serving engine's concurrent batch fan-out.

#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/mpmc_queue.h"

#include "core/disparity_filter.h"
#include "core/maximum_spanning_tree.h"
#include "core/doubly_stochastic.h"
#include "core/high_salience_skeleton.h"
#include "core/naive.h"
#include "core/noise_corrected.h"
#include "core/registry.h"
#include "core/scored_edges.h"
#include "core/sweep.h"
#include "gen/erdos_renyi.h"
#include "graph/adjacency.h"
#include "graph/builder.h"
#include "graph/paths.h"
#include "service/engine.h"
#include "stats/correlation.h"

namespace netbone {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunExecutesEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(64);
  pool.Run(64, [&](int worker) { hits[static_cast<size_t>(worker)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;  // no synchronization: everything runs on this thread
  pool.Run(5, [&](int worker) { sum += worker; });
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const int64_t n : {0, 1, 2, 7, 100, 1000}) {
    for (const int threads : {1, 2, 3, 8, 33}) {
      std::vector<int> hits(static_cast<size_t>(n), 0);
      ParallelFor(n, threads, [&](int64_t begin, int64_t end, int chunk) {
        EXPECT_GE(chunk, 0);
        EXPECT_LT(begin, end);
        for (int64_t i = begin; i < end; ++i) {
          hits[static_cast<size_t>(i)]++;
        }
      });
      for (const int h : hits) EXPECT_EQ(h, 1);
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesDependOnlyOnInputs) {
  // The deterministic-partition contract: same (n, num_threads) => same
  // chunks, regardless of scheduling. Record and compare two runs.
  const int64_t n = 1003;
  const int threads = 7;
  auto record = [&] {
    std::vector<std::pair<int64_t, int64_t>> chunks(
        static_cast<size_t>(threads), {-1, -1});
    ParallelFor(n, threads, [&](int64_t begin, int64_t end, int chunk) {
      chunks[static_cast<size_t>(chunk)] = {begin, end};
    });
    return chunks;
  };
  EXPECT_EQ(record(), record());
}

TEST(ParallelForTest, NestedCallsDegradeGracefully) {
  // A ParallelFor inside a pool task must not deadlock; its chunks join
  // the shared stealing pool (two-level parallelism).
  std::atomic<int> total{0};
  ParallelFor(8, 8, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      ParallelFor(4, 4, [&](int64_t b, int64_t e, int) {
        total += static_cast<int>(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

// ---------------------------------------------------------------------------
// TaskScheduler / TaskGroup / ParallelForDynamic: the work-stealing
// runtime.
// ---------------------------------------------------------------------------

TEST(TaskGroupTest, RunsEveryTaskExactlyOnce) {
  TaskScheduler scheduler(4);
  EXPECT_EQ(scheduler.num_workers(), 3);
  TaskGroup group(&scheduler);
  std::vector<std::atomic<int>> hits(300);
  for (int i = 0; i < 300; ++i) {
    group.Spawn([&hits, i] { hits[static_cast<size_t>(i)]++; });
  }
  group.Wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGroupTest, SingleThreadSchedulerRunsTasksInTheWaiter) {
  TaskScheduler scheduler(1);
  EXPECT_EQ(scheduler.num_workers(), 0);
  TaskGroup group(&scheduler);
  int sum = 0;  // no synchronization: every task runs on this thread
  for (int i = 0; i < 5; ++i) {
    group.Spawn([&sum, i] { sum += i; });
  }
  group.Wait();
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(TaskGroupTest, GroupIsReusableAfterWait) {
  TaskScheduler scheduler(3);
  TaskGroup group(&scheduler);
  std::atomic<int> total{0};
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) {
      group.Spawn([&total] { total++; });
    }
    group.Wait();
    EXPECT_EQ(total.load(), 16 * (round + 1));
  }
}

TEST(TaskGroupTest, StealOrderIndependenceAcross100SeededRuns) {
  // The determinism contract under genuine stealing: per-index slots make
  // the output identical whatever the steal interleaving. Per-task busy
  // work is jittered by (run, index) so the 100 runs at each pool width
  // explore different steal patterns; the pools own real OS threads even
  // on a single-core box, so the interleavings are real.
  constexpr int kTasks = 256;
  std::vector<uint64_t> expected(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    expected[static_cast<size_t>(i)] =
        static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL + 1;
  }
  for (const int threads : {1, 2, 8}) {
    TaskScheduler scheduler(threads);
    for (int run = 0; run < 100; ++run) {
      std::vector<uint64_t> out(kTasks, 0);
      TaskGroup group(&scheduler);
      for (int i = 0; i < kTasks; ++i) {
        group.Spawn([&out, i, run] {
          volatile uint64_t spin = 0;  // jitter: run-dependent duration
          const uint64_t work =
              (static_cast<uint64_t>(i) * 31 + static_cast<uint64_t>(run)) %
              97;
          for (uint64_t k = 0; k < work; ++k) spin = spin + k;
          out[static_cast<size_t>(i)] =
              static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL + 1;
        });
      }
      group.Wait();
      ASSERT_EQ(out, expected) << "threads=" << threads << " run=" << run;
    }
  }
}

TEST(TaskGroupTest, NestedGroupsInsidePoolTasksDoNotDeadlock) {
  // Every outer task parks in an inner Wait; with only 3 workers plus the
  // caller, progress requires the helping wait (a blocked Wait executing
  // pending tasks itself). A deadlock here times out the test suite.
  TaskScheduler scheduler(4);
  std::atomic<int> total{0};
  TaskGroup outer(&scheduler);
  for (int i = 0; i < 16; ++i) {
    outer.Spawn([&scheduler, &total] {
      TaskGroup inner(&scheduler);
      for (int j = 0; j < 8; ++j) {
        inner.Spawn([&total] { total++; });
      }
      inner.Wait();
      total++;
    });
  }
  outer.Wait();
  EXPECT_EQ(total.load(), 16 * 8 + 16);
}

TEST(ParallelForDynamicTest, CoversRangeExactlyOnceWithBoundedBlocks) {
  for (const int64_t n : {0, 1, 2, 7, 100, 1000}) {
    for (const int64_t grain : {1, 3, 16, 1000}) {
      for (const int threads : {1, 2, 8}) {
        std::vector<int> hits(static_cast<size_t>(n), 0);
        ParallelForDynamic(n, grain, threads,
                           [&](int64_t begin, int64_t end) {
                             EXPECT_LT(begin, end);
                             if (threads != 1) {
                               // Parallel decomposition: blocks honor the
                               // grain (the serial path is one block).
                               EXPECT_LE(end - begin,
                                         std::max<int64_t>(grain, 1));
                             }
                             for (int64_t i = begin; i < end; ++i) {
                               hits[static_cast<size_t>(i)]++;
                             }
                           });
        for (const int h : hits) EXPECT_EQ(h, 1);
      }
    }
  }
}

TEST(ParallelForDynamicTest, PerIndexSlotsIdenticalAcrossThreadCounts) {
  constexpr int64_t kN = 5000;
  std::vector<uint64_t> reference(kN);
  ParallelForDynamic(kN, 16, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      reference[static_cast<size_t>(i)] =
          static_cast<uint64_t>(i * i) ^ 0xABCDULL;
    }
  });
  for (const int threads : {2, 8}) {
    std::vector<uint64_t> out(kN, 0);
    ParallelForDynamic(kN, 16, threads, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        out[static_cast<size_t>(i)] =
            static_cast<uint64_t>(i * i) ^ 0xABCDULL;
      }
    });
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

TEST(ParallelForDynamicTest, NestedInsideParallelForSharesThePool) {
  // The two-level shape the sweep engine uses: outer static chunks, inner
  // dynamic blocks, one shared pool, no deadlock, exact coverage.
  std::atomic<int64_t> total{0};
  ParallelFor(8, 8, [&](int64_t begin, int64_t end, int) {
    for (int64_t i = begin; i < end; ++i) {
      ParallelForDynamic(64, 4, 8, [&](int64_t b, int64_t e) {
        total += e - b;
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ResolveThreadCountTest, PositivePassesThroughZeroResolvesHardware) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-5), 1);
}

// ---------------------------------------------------------------------------
// ParallelScoreEdges determinism across thread counts.
// ---------------------------------------------------------------------------

Graph MakeScoringGraph(Directedness directedness) {
  // Large enough (30k edges) that ParallelScoreEdges genuinely splits the
  // table into multiple chunks instead of collapsing to one.
  auto g = GenerateErdosRenyi({.num_nodes = 10000,
                               .average_degree = 6.0,
                               .directedness = directedness,
                               .seed = 5});
  return *std::move(g);
}

void ExpectBitIdenticalAcrossThreads(Method method, const Graph& graph) {
  RunMethodOptions serial;
  serial.num_threads = 1;
  const auto reference = RunMethod(method, graph, serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const int threads : {2, 8}) {
    RunMethodOptions options;
    options.num_threads = threads;
    const auto scored = RunMethod(method, graph, options);
    ASSERT_TRUE(scored.ok()) << scored.status().ToString();
    ASSERT_EQ(scored->size(), reference->size());
    for (EdgeId id = 0; id < reference->size(); ++id) {
      // Bit-identical, not just close: same chunks compute the same FP
      // expressions on the same inputs.
      EXPECT_EQ(scored->at(id).score, reference->at(id).score)
          << MethodName(method) << " edge " << id << " threads " << threads;
      EXPECT_EQ(scored->at(id).sdev, reference->at(id).sdev);
    }
  }
}

TEST(ParallelScoreEdgesTest, NoiseCorrectedDeterministicUndirected) {
  ExpectBitIdenticalAcrossThreads(Method::kNoiseCorrected,
                                  MakeScoringGraph(Directedness::kUndirected));
}

TEST(ParallelScoreEdgesTest, NoiseCorrectedDeterministicDirected) {
  ExpectBitIdenticalAcrossThreads(Method::kNoiseCorrected,
                                  MakeScoringGraph(Directedness::kDirected));
}

TEST(ParallelScoreEdgesTest, DisparityFilterDeterministic) {
  ExpectBitIdenticalAcrossThreads(Method::kDisparityFilter,
                                  MakeScoringGraph(Directedness::kUndirected));
  ExpectBitIdenticalAcrossThreads(Method::kDisparityFilter,
                                  MakeScoringGraph(Directedness::kDirected));
}

TEST(ParallelScoreEdgesTest, NaiveThresholdDeterministic) {
  ExpectBitIdenticalAcrossThreads(Method::kNaiveThreshold,
                                  MakeScoringGraph(Directedness::kUndirected));
}

TEST(ParallelScoreEdgesTest, HighSalienceSkeletonDeterministic) {
  auto g = GenerateErdosRenyi(
      {.num_nodes = 120, .average_degree = 5.0, .seed = 9});
  ASSERT_TRUE(g.ok());
  ExpectBitIdenticalAcrossThreads(Method::kHighSalienceSkeleton, *g);
}

TEST(ParallelScoreEdgesTest, DoublyStochasticDeterministic) {
  // The Sinkhorn sweeps are node-major: every node's row/column sums fold
  // whole, in fixed CSR arc order, inside one chunk — so the balanced
  // scores must be bit-identical for every thread count, not just close.
  // A circulant graph (three chord lengths, varying weights) is regular,
  // hence has total support and converges; 600 nodes give ParallelFor a
  // real multi-chunk partition at every tested thread count.
  GraphBuilder builder(Directedness::kUndirected);
  const NodeId n = 600;
  for (NodeId v = 0; v < n; ++v) {
    builder.AddEdge(v, (v + 1) % n, 1.0 + (v % 13));
    builder.AddEdge(v, (v + 7) % n, 2.0 + (v % 5));
    builder.AddEdge(v, (v + 23) % n, 0.5 + (v % 3));
  }
  const Graph g = *builder.Build();
  ExpectBitIdenticalAcrossThreads(Method::kDoublyStochastic, g);
}

TEST(ParallelScoreEdgesTest, ScorerSeesAlignedEdgeIds) {
  const Graph g = MakeScoringGraph(Directedness::kUndirected);
  const auto scores = ParallelScoreEdges(
      g, 4, [&](EdgeId id, const Edge& e, EdgeScore* out) -> Status {
        EXPECT_EQ(e, g.edge(id));
        *out = EdgeScore{static_cast<double>(id), 0.0};
        return Status::OK();
      });
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < scores->size(); ++i) {
    EXPECT_EQ((*scores)[i].score, static_cast<double>(i));
  }
}

// ---------------------------------------------------------------------------
// First-error-wins status aggregation.
// ---------------------------------------------------------------------------

/// A graph whose NC sweep fails mid-table: zero-weight edges to
/// otherwise-isolated nodes give that endpoint zero strength, which
/// NoiseCorrectedEdge rejects. The chain is long enough (20k edges) that
/// the parallel sweep uses several chunks, and the invalid edges land in
/// different chunks so the error aggregation is actually contested.
Graph MakeGraphWithInvalidEdges() {
  GraphBuilder builder(Directedness::kUndirected);
  for (NodeId v = 0; v < 20000; ++v) {
    builder.AddEdge(v, v + 1, 2.0 + (v % 17));
  }
  builder.AddEdge(500, 20001, 0.0);    // earliest invalid edge in id order
  builder.AddEdge(10000, 20002, 0.0);  // mid-table invalid edge
  builder.AddEdge(19000, 20003, 0.0);  // late invalid edge
  return *builder.Build();
}

TEST(ParallelScoreEdgesTest, ErrorFromMidChunkEdgePropagates) {
  const Graph g = MakeGraphWithInvalidEdges();
  for (const int threads : {1, 2, 8}) {
    NoiseCorrectedOptions options;
    options.num_threads = threads;
    const auto scored = NoiseCorrected(g, options);
    ASSERT_FALSE(scored.ok()) << "threads " << threads;
    EXPECT_TRUE(scored.status().IsInvalidArgument());
  }
}

TEST(ParallelScoreEdgesTest, FirstErrorWinsMatchesSerialSweep) {
  const Graph g = MakeGraphWithInvalidEdges();
  // Distinct error messages per edge id let us observe which error won.
  auto scorer_result = [&](int threads) {
    return ParallelScoreEdges(
        g, threads, [](EdgeId id, const Edge& e, EdgeScore* out) -> Status {
          if (e.weight == 0.0) {
            return Status::InvalidArgument("zero weight at edge " +
                                           std::to_string(id));
          }
          *out = EdgeScore{e.weight, 0.0};
          return Status::OK();
        });
  };
  const auto serial = scorer_result(1);
  ASSERT_FALSE(serial.ok());
  for (const int threads : {2, 8, 16}) {
    const auto parallel = scorer_result(threads);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString())
        << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation inside the scoring loops.
// ---------------------------------------------------------------------------

TEST(ParallelScoreEdgesTest, PreCancelledTokenStopsBeforeScoring) {
  const Graph g = MakeScoringGraph(Directedness::kUndirected);
  CancelSource source;
  source.Cancel();
  std::atomic<int64_t> scored{0};
  for (const int threads : {1, 4}) {
    const auto result = ParallelScoreEdges(
        g, threads,
        [&](EdgeId, const Edge& e, EdgeScore* out) -> Status {
          scored.fetch_add(1, std::memory_order_relaxed);
          *out = EdgeScore{e.weight, 0.0};
          return Status::OK();
        },
        source.token());
    ASSERT_FALSE(result.ok()) << "threads " << threads;
    EXPECT_TRUE(result.status().IsCancelled());
  }
  // Polled at chunk granularity: a token fired before the sweep starts
  // means at most a stride per worker runs, never the full edge table.
  EXPECT_LT(scored.load(), g.num_edges());
}

TEST(ParallelScoreEdgesTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  const Graph g = MakeScoringGraph(Directedness::kUndirected);
  CancelSource source(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  const auto result = ParallelScoreEdges(
      g, 4,
      [](EdgeId, const Edge& e, EdgeScore* out) -> Status {
        *out = EdgeScore{e.weight, 0.0};
        return Status::OK();
      },
      source.token());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(ParallelScoreEdgesTest, RecordedEdgeErrorOutranksCancellation) {
  // An edge error recorded before the token fires beats the cancellation:
  // a serial sweep would have hit that edge before any cancellation check
  // at or past it. Edge 0 errors *and* fires the token, so every later
  // chunk may bail cancelled — the edge-0 error must still win.
  const Graph g = MakeScoringGraph(Directedness::kUndirected);
  for (const int threads : {1, 4}) {
    CancelSource source;
    const auto result = ParallelScoreEdges(
        g, threads,
        [&](EdgeId id, const Edge&, EdgeScore*) -> Status {
          if (id == 0) {
            source.Cancel();
            return Status::InvalidArgument("bad edge 0");
          }
          return Status::OK();
        },
        source.token());
    ASSERT_FALSE(result.ok()) << "threads " << threads;
    EXPECT_TRUE(result.status().IsInvalidArgument());
  }
}

TEST(ParallelScoreEdgesTest, MethodOptionsPlumbCancelTokens) {
  const Graph g = MakeScoringGraph(Directedness::kUndirected);
  CancelSource source;
  source.Cancel();

  NoiseCorrectedOptions nc;
  nc.cancel = source.token();
  const auto nc_result = NoiseCorrected(g, nc);
  ASSERT_FALSE(nc_result.ok());
  EXPECT_TRUE(nc_result.status().IsCancelled());

  DisparityFilterOptions df;
  df.cancel = source.token();
  const auto df_result = DisparityFilter(g, df);
  ASSERT_FALSE(df_result.ok());
  EXPECT_TRUE(df_result.status().IsCancelled());

  NaiveThresholdOptions nt;
  nt.cancel = source.token();
  const auto nt_result = NaiveThreshold(g, nt);
  ASSERT_FALSE(nt_result.ok());
  EXPECT_TRUE(nt_result.status().IsCancelled());
}

TEST(ParallelScoreEdgesTest, HssHonoursDeadlineBetweenSourceBatches) {
  const Graph g = MakeScoringGraph(Directedness::kUndirected);
  HighSalienceSkeletonOptions options;
  CancelSource source(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  options.cancel = source.token();
  const auto result = HighSalienceSkeleton(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

// ---------------------------------------------------------------------------
// DijkstraWorkspace: zero-alloc reuse must match the allocating wrapper.
// ---------------------------------------------------------------------------

TEST(DijkstraWorkspaceTest, MatchesAllocatingDijkstraAcrossReuse) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 150, .average_degree = 4.0, .seed = 21});
  ASSERT_TRUE(g.ok());
  const Adjacency adjacency(*g);
  DijkstraWorkspace workspace;
  // Reuse one workspace over many sources; stale state from the previous
  // source must never leak into the next run.
  for (NodeId source = 0; source < 40; ++source) {
    DijkstraInto(adjacency, source, {}, &workspace);
    const ShortestPathTree fresh = Dijkstra(adjacency, source);
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      const size_t i = static_cast<size_t>(v);
      EXPECT_EQ(workspace.distance(v), fresh.distance[i]);
      EXPECT_EQ(workspace.parent_edge(v), fresh.parent_edge[i]);
      EXPECT_EQ(workspace.parent(v), fresh.parent[i]);
    }
  }
}

TEST(DijkstraWorkspaceTest, TouchedListsSourceAndAllReachedNodes) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(3, 4, 1.0);  // separate component
  const Graph g = *builder.Build();
  const Adjacency adjacency(g);
  DijkstraWorkspace workspace;
  DijkstraInto(adjacency, 0, {}, &workspace);
  EXPECT_EQ(workspace.touched().size(), 3u);
  EXPECT_TRUE(std::isinf(workspace.distance(3)));
  EXPECT_EQ(workspace.parent_edge(4), -1);
}

// ---------------------------------------------------------------------------
// Sampled HSS: seeded reproducibility and agreement with the exact run.
// ---------------------------------------------------------------------------

TEST(SampledHssTest, SameSeedReproducesScoresExactly) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 200, .average_degree = 5.0, .seed = 31});
  ASSERT_TRUE(g.ok());
  HighSalienceSkeletonOptions options;
  options.source_sample_size = 32;
  options.sample_seed = 7;
  const auto a = HighSalienceSkeleton(*g, options);
  options.num_threads = 3;  // threading must not disturb the sample
  const auto b = HighSalienceSkeleton(*g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_EQ(a->at(id).score, b->at(id).score);
  }
}

TEST(SampledHssTest, DifferentSeedsSampleDifferentSources) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 200, .average_degree = 5.0, .seed = 31});
  ASSERT_TRUE(g.ok());
  HighSalienceSkeletonOptions a_options;
  a_options.source_sample_size = 16;
  a_options.sample_seed = 1;
  HighSalienceSkeletonOptions b_options = a_options;
  b_options.sample_seed = 2;
  const auto a = HighSalienceSkeleton(*g, a_options);
  const auto b = HighSalienceSkeleton(*g, b_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = false;
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    if (a->at(id).score != b->at(id).score) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SampledHssTest, SampledScoresAgreeWithExact) {
  // Acceptance gate: k = 256 sources on a small graph must rank edges
  // nearly identically to the exact |V|-source run.
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 400, .average_degree = 4.0, .seed = 41});
  ASSERT_TRUE(g.ok());
  const auto exact = HighSalienceSkeleton(*g);
  ASSERT_TRUE(exact.ok());
  HighSalienceSkeletonOptions options;
  options.source_sample_size = 256;
  const auto sampled = HighSalienceSkeleton(*g, options);
  ASSERT_TRUE(sampled.ok());
  const auto spearman = SpearmanCorrelation(exact->ScoreValues(),
                                            sampled->ScoreValues());
  ASSERT_TRUE(spearman.ok()) << spearman.status().ToString();
  EXPECT_GE(*spearman, 0.9);
}

TEST(SampledHssTest, SamplingLiftsTheExactCostCap) {
  // A budget that rejects the exact |V|*|E| run admits the k*|E| sampled
  // run on the same graph — the new large-graph HSS scenario.
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 500, .average_degree = 4.0, .seed = 51});
  ASSERT_TRUE(g.ok());
  HighSalienceSkeletonOptions options;
  options.max_cost = 100 * g->num_edges();  // < |V| * |E|
  const auto exact = HighSalienceSkeleton(*g, options);
  ASSERT_FALSE(exact.ok());
  EXPECT_TRUE(exact.status().IsFailedPrecondition());
  options.source_sample_size = 64;  // 64 * |E| fits the same budget
  const auto sampled = HighSalienceSkeleton(*g, options);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_GE(sampled->at(id).score, 0.0);
    EXPECT_LE(sampled->at(id).score, 1.0);
  }
}

TEST(SampledHssTest, SampleSizeAboveNodeCountRunsExact) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 50, .average_degree = 4.0, .seed = 61});
  ASSERT_TRUE(g.ok());
  HighSalienceSkeletonOptions options;
  options.source_sample_size = 1000;  // >= |V|: silently exact
  const auto a = HighSalienceSkeleton(*g, options);
  const auto b = HighSalienceSkeleton(*g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_EQ(a->at(id).score, b->at(id).score);
  }
}

// ---------------------------------------------------------------------------
// Registry plumbing.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// ParallelSort and the parallel MST Kruskal sort built on it.
// ---------------------------------------------------------------------------

TEST(ParallelSortTest, MatchesStdSortForTotalOrders) {
  // Shuffled distinct values: the comparator is a strict total order, so
  // the sorted sequence is unique and must be identical to std::sort for
  // every thread count. 50k elements exercises the chunked merge path.
  std::vector<int64_t> base(50000);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<int64_t>((i * 2654435761u) % 1000003u) * 1000003 +
              static_cast<int64_t>(i);  // distinct
  }
  std::vector<int64_t> expected = base;
  std::sort(expected.begin(), expected.end());
  for (const int threads : {1, 2, 3, 7, 16}) {
    std::vector<int64_t> v = base;
    ParallelSort(&v, threads, std::less<int64_t>());
    EXPECT_EQ(v, expected) << "threads=" << threads;
  }
}

TEST(ParallelSortTest, SmallInputsFallBackToSerialSort) {
  std::vector<int> v = {5, 3, 9, 1, 1, 3};
  ParallelSort(&v, 8, std::less<int>());
  EXPECT_EQ(v, (std::vector<int>{1, 1, 3, 3, 5, 9}));
}

TEST(MstParallelTest, BitIdenticalAcrossThreadCounts) {
  // Big enough (>= 8192 pairs) that the Kruskal sort actually runs the
  // chunked parallel path; both directednesses.
  for (const Directedness directedness :
       {Directedness::kUndirected, Directedness::kDirected}) {
    const auto g = GenerateErdosRenyi({.num_nodes = 8000,
                                       .average_degree = 4.0,
                                       .directedness = directedness,
                                       .seed = 81});
    ASSERT_TRUE(g.ok());
    MaximumSpanningTreeOptions serial;
    serial.num_threads = 1;
    const auto reference = MaximumSpanningTree(*g, serial);
    ASSERT_TRUE(reference.ok());
    for (const int threads : {2, 3, 8}) {
      MaximumSpanningTreeOptions options;
      options.num_threads = threads;
      const auto scored = MaximumSpanningTree(*g, options);
      ASSERT_TRUE(scored.ok());
      for (EdgeId id = 0; id < g->num_edges(); ++id) {
        ASSERT_EQ(scored->at(id).score, reference->at(id).score)
            << "threads=" << threads << " edge=" << id;
      }
    }
  }
}

TEST(MstParallelTest, ThreadsFlowThroughRunMethod) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 500, .average_degree = 3.0, .seed = 82});
  ASSERT_TRUE(g.ok());
  RunMethodOptions two_threads;
  two_threads.num_threads = 2;
  const auto a = RunMethod(Method::kMaximumSpanningTree, *g, two_threads);
  const auto b = RunMethod(Method::kMaximumSpanningTree, *g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_EQ(a->at(id).score, b->at(id).score);
  }
}

// ---------------------------------------------------------------------------
// Registry plumbing.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Serving-engine scheduling: phase 1 of ExecuteBatch now resolves
// distinct cold keys as concurrent work-stealing tasks — the one-sort /
// one-score-per-key contract must hold exactly as it did when the keys
// were resolved serially.
// ---------------------------------------------------------------------------

TEST(ExecuteBatchSchedulingTest, OneSortPerMethodUnderConcurrentColdKeys) {
  BackboneEngine engine;
  const auto g1 = GenerateErdosRenyi(
      {.num_nodes = 300, .average_degree = 3.0, .seed = 91});
  const auto g2 = GenerateErdosRenyi(
      {.num_nodes = 300, .average_degree = 3.0, .seed = 92});
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  const uint64_t f1 = engine.AddGraph(*g1);
  const uint64_t f2 = engine.AddGraph(*g2);

  // 2 graphs x 4 methods x 2 shares = 16 requests over 8 distinct keys,
  // all cold.
  std::vector<BackboneRequest> batch;
  for (const uint64_t graph : {f1, f2}) {
    for (const Method method :
         {Method::kNoiseCorrected, Method::kDisparityFilter,
          Method::kMaximumSpanningTree, Method::kNaiveThreshold}) {
      for (const double share : {0.2, 0.5}) {
        BackboneRequest request;
        request.graph = graph;
        request.method = method;
        request.kind = RequestKind::kTopShare;
        request.share = share;
        batch.push_back(request);
      }
    }
  }

  const int64_t sorts_before = ScoreOrder::SortsPerformed();
  const std::vector<Result<BackboneResponse>> cold =
      engine.ExecuteBatch(batch);
  ASSERT_EQ(cold.size(), batch.size());
  for (const auto& result : cold) ASSERT_TRUE(result.ok());
  // However the 8 cold-key tasks interleaved, each key scored and sorted
  // exactly once.
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before, 8);
  EXPECT_EQ(engine.stats().scores_computed, 8);

  // A warm replay stays zero-sort / zero-score.
  const std::vector<Result<BackboneResponse>> warm =
      engine.ExecuteBatch(batch);
  EXPECT_EQ(ScoreOrder::SortsPerformed() - sorts_before, 8);
  EXPECT_EQ(engine.stats().scores_computed, 8);
  for (size_t i = 0; i < warm.size(); ++i) {
    ASSERT_TRUE(warm[i].ok());
    EXPECT_TRUE(warm[i]->cache_hit);
    EXPECT_EQ(warm[i]->kept_edges, cold[i]->kept_edges);
  }
}

TEST(SchedulerThreadsFromEnvTest, ParsesClampsAndRejects) {
  // Unset / empty / 0 / garbage / negative / overflow -> hardware count.
  EXPECT_EQ(SchedulerThreadsFromEnv(nullptr, 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("", 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("0", 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("4x", 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("2.5", 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("-3", 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("threads", 8), 8);
  EXPECT_EQ(SchedulerThreadsFromEnv("99999999999999999999", 8), 8);

  // Valid values pass through, clamped above.
  EXPECT_EQ(SchedulerThreadsFromEnv("1", 8), 1);
  EXPECT_EQ(SchedulerThreadsFromEnv("4", 8), 4);
  EXPECT_EQ(SchedulerThreadsFromEnv("16", 2), 16);  // may exceed hardware
  EXPECT_EQ(SchedulerThreadsFromEnv("1000000", 8), kMaxSchedulerThreads);

  // A degenerate hardware report still yields a usable pool.
  EXPECT_EQ(SchedulerThreadsFromEnv(nullptr, 0), 1);
}

TEST(RegistryParallelTest, SampledHssOptionsFlowThroughRunMethod) {
  const auto g = GenerateErdosRenyi(
      {.num_nodes = 200, .average_degree = 4.0, .seed = 71});
  ASSERT_TRUE(g.ok());
  RunMethodOptions options;
  options.hss_source_sample_size = 32;
  options.hss_sample_seed = 9;
  const auto a = RunMethod(Method::kHighSalienceSkeleton, *g, options);
  ASSERT_TRUE(a.ok());
  HighSalienceSkeletonOptions direct;
  direct.source_sample_size = 32;
  direct.sample_seed = 9;
  const auto b = HighSalienceSkeleton(*g, direct);
  ASSERT_TRUE(b.ok());
  for (EdgeId id = 0; id < g->num_edges(); ++id) {
    EXPECT_EQ(a->at(id).score, b->at(id).score);
  }
}

// ---------------------------------------------------------------------------
// MpmcQueue — the scheduler's lock-free injection ring.
// ---------------------------------------------------------------------------

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
}

TEST(MpmcQueueTest, FifoOrderSingleThread) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.TryPush(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(MpmcQueueTest, PushRefusesWhenFullPopRefusesWhenEmpty) {
  MpmcQueue<int> queue(2);
  int out = -1;
  EXPECT_FALSE(queue.TryPop(&out));  // empty from the start
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: value refused, caller keeps it
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3));  // the freed cell is reusable next lap
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(MpmcQueueTest, WrapsAcrossManyLaps) {
  MpmcQueue<int> queue(4);
  int out = -1;
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(queue.TryPush(lap));
    EXPECT_TRUE(queue.TryPush(lap + 1000000));
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, lap);
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, lap + 1000000);
  }
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersDeliverEveryValueOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  MpmcQueue<int> queue(64);  // far smaller than the traffic: wraps a lot
  std::atomic<int> popped{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!queue.TryPush(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &popped, &seen]() {
      int out = -1;
      while (popped.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (queue.TryPop(&out)) {
          seen[static_cast<size_t>(out)]++;
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(MpmcQueueTest, PerProducerFifoOrderHoldsUnderConcurrency) {
  // FIFO holds per claimed position; with a single consumer, each
  // producer's values must drain in that producer's push order.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4000;
  MpmcQueue<int> queue(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.TryPush(p * kPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> last(kProducers, -1);
  int drained = 0;
  int out = -1;
  while (drained < kProducers * kPerProducer) {
    if (!queue.TryPop(&out)) {
      std::this_thread::yield();
      continue;
    }
    const int producer = out / kPerProducer;
    const int seq = out % kPerProducer;
    EXPECT_GT(seq, last[static_cast<size_t>(producer)]);
    last[static_cast<size_t>(producer)] = seq;
    ++drained;
  }
  for (std::thread& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last[static_cast<size_t>(p)], kPerProducer - 1);
  }
}

}  // namespace
}  // namespace netbone
