// Tests for the evaluation substrate: Coverage (Sec. V-D), Recovery
// (Sec. V-A), Stability (Sec. V-F), Quality (Sec. V-E), and edge budgets.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/naive.h"
#include "eval/coverage.h"
#include "eval/edge_budget.h"
#include "eval/quality.h"
#include "eval/recovery.h"
#include "eval/stability.h"
#include "graph/builder.h"
#include "graph/temporal.h"
#include "graph/transform.h"

namespace netbone {
namespace {

Graph MakeStar() {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 4.0);
  builder.AddEdge(0, 2, 3.0);
  builder.AddEdge(0, 3, 2.0);
  builder.AddEdge(0, 4, 1.0);
  return *builder.Build();
}

// ---------------------------------------------------------------------------
// Coverage.
// ---------------------------------------------------------------------------

TEST(CoverageTest, FullBackboneHasCoverageOne) {
  const Graph g = MakeStar();
  const auto c = Coverage(g, g);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 1.0);
}

TEST(CoverageTest, DroppingALeafEdgeIsolatesIt) {
  const Graph g = MakeStar();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const BackboneMask top3 = TopK(*nt, 3);  // drops edge 0-4
  const auto c = CoverageOfMask(g, top3);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 4.0 / 5.0);
  // Materialized version agrees.
  const auto backbone = ApplyMask(g, top3);
  ASSERT_TRUE(backbone.ok());
  const auto c2 = Coverage(g, *backbone);
  ASSERT_TRUE(c2.ok());
  EXPECT_DOUBLE_EQ(*c2, *c);
}

TEST(CoverageTest, OriginalIsolatesAreExcludedFromDenominator) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1, 1.0);
  builder.ReserveNodes(10);  // 8 isolates
  const Graph g = *builder.Build();
  const auto c = Coverage(g, g);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 1.0);  // 2/2, not 2/10
}

TEST(CoverageTest, ErrorCases) {
  const Graph g = MakeStar();
  GraphBuilder empty(Directedness::kUndirected);
  empty.ReserveNodes(5);
  const Graph no_edges = *empty.Build();
  EXPECT_FALSE(Coverage(no_edges, no_edges).ok());  // all isolates
  GraphBuilder other(Directedness::kUndirected);
  other.AddEdge(0, 1, 1.0);
  EXPECT_FALSE(Coverage(g, *other.Build()).ok());  // universe mismatch
  BackboneMask bad;
  bad.keep = {true};
  EXPECT_FALSE(CoverageOfMask(g, bad).ok());
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

TEST(RecoveryTest, JaccardOfMasks) {
  const std::vector<bool> truth = {true, true, false, false};
  EXPECT_DOUBLE_EQ(*JaccardRecovery({true, true, false, false}, truth),
                   1.0);
  EXPECT_DOUBLE_EQ(*JaccardRecovery({true, false, true, false}, truth),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(*JaccardRecovery({false, false, true, true}, truth),
                   0.0);
  EXPECT_DOUBLE_EQ(
      *JaccardRecovery({false, false, false, false},
                       {false, false, false, false}),
      1.0);
  EXPECT_FALSE(JaccardRecovery({true}, truth).ok());
}

TEST(RecoveryTest, JaccardOfEdgeSets) {
  GraphBuilder a(Directedness::kUndirected);
  a.AddEdge(0, 1, 1.0);
  a.AddEdge(1, 2, 1.0);
  GraphBuilder b(Directedness::kUndirected);
  b.AddEdge(1, 0, 5.0);  // same undirected pair as (0,1)
  b.AddEdge(2, 3, 1.0);
  const auto j = JaccardEdgeSets(*a.Build(), *b.Build());
  ASSERT_TRUE(j.ok());
  EXPECT_DOUBLE_EQ(*j, 1.0 / 3.0);  // intersection {0-1}; union 3 pairs
}

TEST(RecoveryTest, JaccardEdgeSetsDirednessMismatch) {
  GraphBuilder a(Directedness::kUndirected);
  a.AddEdge(0, 1, 1.0);
  GraphBuilder b(Directedness::kDirected);
  b.AddEdge(0, 1, 1.0);
  EXPECT_FALSE(JaccardEdgeSets(*a.Build(), *b.Build()).ok());
}

// ---------------------------------------------------------------------------
// Stability.
// ---------------------------------------------------------------------------

TEST(StabilityTest, IdenticalYearsArePerfectlyStable) {
  const Graph g = MakeStar();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  const auto s = Stability(g, g, TopK(*nt, 4));
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, 1.0, 1e-12);
}

TEST(StabilityTest, ScrambledYearIsUnstable) {
  // Year t+1 reverses the weight ranking.
  GraphBuilder builder_t1(Directedness::kUndirected);
  builder_t1.AddEdge(0, 1, 1.0);
  builder_t1.AddEdge(0, 2, 2.0);
  builder_t1.AddEdge(0, 3, 3.0);
  builder_t1.AddEdge(0, 4, 4.0);
  const Graph year_t = MakeStar();
  const Graph year_t1 = *builder_t1.Build();
  const auto nt = NaiveThreshold(year_t);
  ASSERT_TRUE(nt.ok());
  const auto s = Stability(year_t, year_t1, TopK(*nt, 4));
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, -1.0, 1e-12);
}

TEST(StabilityTest, MissingPairsCountAsZero) {
  GraphBuilder builder_t1(Directedness::kUndirected);
  builder_t1.AddEdge(0, 1, 4.0);
  builder_t1.AddEdge(0, 2, 3.0);
  builder_t1.ReserveNodes(5);  // edges 0-3, 0-4 vanish in year t+1
  const Graph year_t = MakeStar();
  const Graph year_t1 = *builder_t1.Build();
  const auto nt = NaiveThreshold(year_t);
  ASSERT_TRUE(nt.ok());
  const auto s = Stability(year_t, year_t1, TopK(*nt, 4));
  ASSERT_TRUE(s.ok());
  // Vanished pairs weigh 0 and tie at the bottom ranks; the correlation
  // stays positive but below 1.
  EXPECT_GT(*s, 0.5);
  EXPECT_LT(*s, 1.0);
}

TEST(StabilityTest, NeedsAtLeastThreeEdges) {
  const Graph g = MakeStar();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  EXPECT_FALSE(Stability(g, g, TopK(*nt, 2)).ok());
}

TEST(StabilityTest, MeanStabilityAveragesConsecutivePairs) {
  const Graph g = MakeStar();
  const auto network =
      TemporalNetwork::Create({g, g, g}, "test");
  ASSERT_TRUE(network.ok());
  const auto mean = MeanStability(*network, [](const Graph& year) {
    Result<ScoredEdges> nt = NaiveThreshold(year);
    if (!nt.ok()) return Result<BackboneMask>(nt.status());
    return Result<BackboneMask>(TopK(*nt, 4));
  });
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(*mean, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Quality.
// ---------------------------------------------------------------------------

TEST(QualityTest, NoiselessSubsetRaisesRSquared) {
  // Construct a network where log(w+1) = 2x exactly on "signal" edges and
  // is pure noise on the rest; restricting to signal edges must raise R².
  Rng rng(5);
  GraphBuilder builder(Directedness::kDirected);
  std::vector<double> predictor;
  std::vector<bool> is_signal;
  NodeId next = 0;
  for (int i = 0; i < 200; ++i) {
    const NodeId a = next++;
    const NodeId b = next++;
    const double x = rng.Uniform(0.0, 3.0);
    const bool signal = i % 2 == 0;
    const double log_w = signal ? 2.0 * x : rng.Uniform(0.0, 6.0);
    builder.AddEdge(a, b, std::exp(log_w) - 1.0);
  }
  const Graph g = *builder.Build();
  // Predictor columns aligned with the *sorted* edge table: recompute from
  // the edge weights (invert the construction for signal edges; noise
  // edges get an independent draw).
  // Simpler: use a fresh deterministic predictor equal to log1p(w)/2 on
  // signal edges (perfect fit there) and random elsewhere.
  Rng rng2(9);
  predictor.reserve(static_cast<size_t>(g.num_edges()));
  is_signal.reserve(static_cast<size_t>(g.num_edges()));
  BackboneMask mask;
  mask.keep.assign(static_cast<size_t>(g.num_edges()), false);
  for (EdgeId id = 0; id < g.num_edges(); ++id) {
    const Edge& e = g.edge(id);
    const bool signal = (std::min(e.src, e.dst) / 1) % 4 < 2;  // pairs 2i,2i+1 -> i%2
    // signal iff the pair index is even: pair index = src/2.
    const bool truly_signal = (e.src / 2) % 2 == 0;
    (void)signal;
    is_signal.push_back(truly_signal);
    if (truly_signal) {
      predictor.push_back(std::log1p(e.weight) / 2.0);
      mask.keep[static_cast<size_t>(id)] = true;
      ++mask.kept;
    } else {
      predictor.push_back(rng2.Uniform(0.0, 3.0));
    }
  }
  const auto q = QualityRatio(g, {predictor}, mask);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_GT(q->r2_backbone, 0.99);
  EXPECT_LT(q->r2_full, 0.9);
  EXPECT_GT(q->ratio, 1.0);
  EXPECT_EQ(q->n_full, g.num_edges());
  EXPECT_EQ(q->n_backbone, mask.kept);
}

TEST(QualityTest, ValidatesShapes) {
  const Graph g = MakeStar();
  BackboneMask mask;
  mask.keep.assign(4, true);
  mask.kept = 4;
  EXPECT_FALSE(QualityRatio(g, {{1.0, 2.0}}, mask).ok());  // bad column
  BackboneMask bad_mask;
  bad_mask.keep.assign(2, true);
  EXPECT_FALSE(
      QualityRatio(g, {{1.0, 2.0, 3.0, 4.0}}, bad_mask).ok());
}

// ---------------------------------------------------------------------------
// Edge budgets.
// ---------------------------------------------------------------------------

TEST(EdgeBudgetTest, CountAboveScore) {
  const Graph g = MakeStar();
  const auto nt = NaiveThreshold(g);
  ASSERT_TRUE(nt.ok());
  EXPECT_EQ(CountAboveScore(*nt, 0.0), 4);
  EXPECT_EQ(CountAboveScore(*nt, 2.0), 2);
  EXPECT_EQ(CountAboveScore(*nt, 10.0), 0);
}

TEST(EdgeBudgetTest, HssBudgetOnStarIsAllEdges) {
  // Every star edge lies on every shortest path tree: salience 1 > 0.5.
  const Graph g = MakeStar();
  const auto budget = HssEdgeBudget(g);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 4);
}

TEST(EdgeBudgetTest, BudgetedBackboneRespectsBudget) {
  const Graph g = MakeStar();
  for (const Method m : {Method::kNaiveThreshold, Method::kNoiseCorrected,
                         Method::kDisparityFilter,
                         Method::kHighSalienceSkeleton}) {
    const auto mask = BudgetedBackbone(m, g, 2);
    ASSERT_TRUE(mask.ok()) << MethodName(m);
    EXPECT_EQ(mask->kept, 2) << MethodName(m);
  }
}

TEST(EdgeBudgetTest, MstIgnoresBudget) {
  const Graph g = MakeStar();
  const auto mask = BudgetedBackbone(Method::kMaximumSpanningTree, g, 1);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->kept, 4);  // the star's spanning tree is all 4 edges
}

}  // namespace
}  // namespace netbone
